package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the Go toolchain version and,
// when the binary was built inside a version-controlled checkout, the VCS
// revision and dirty flag. Fields the build did not stamp are empty.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity (cached after the first call —
// debug.ReadBuildInfo parses the embedded module data each time).
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo adds the standard ctc_build_info info metric (constant
// 1, labeled with the Go version and VCS revision) plus a go_goroutines
// gauge to reg.
func RegisterBuildInfo(reg *Registry) {
	b := Build()
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	}
	reg.NewInfo("ctc_build_info",
		"Build identity of the running binary; the value is always 1.",
		[][2]string{{"go_version", b.GoVersion}, {"revision", rev}})
	reg.NewGaugeFunc("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
