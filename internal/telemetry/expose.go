package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteTo renders every registered family in Prometheus text exposition
// format (version 0.0.4): families in name order, each with its # HELP and
// # TYPE line, histogram children as cumulative _bucket series plus _sum
// and _count. Scraping never blocks recording — values are read from the
// live atomics.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	for _, f := range r.sortedFamilies() {
		if err := f.write(cw); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countingWriter) printf(format string, args ...any) error {
	n, err := fmt.Fprintf(c.w, format, args...)
	c.n += int64(n)
	return err
}

// write renders one family.
func (f *family) write(w *countingWriter) error {
	typ := "gauge"
	switch f.kind {
	case kindCounter, kindCounterFunc, kindCounterVec:
		typ = "counter"
	case kindHistogram, kindHistogramVec:
		typ = "histogram"
	}
	if err := w.printf("# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, typ); err != nil {
		return err
	}
	switch f.kind {
	case kindCounter:
		return w.printf("%s %s\n", f.name, formatValue(float64(f.counter.Value())))
	case kindCounterFunc:
		return w.printf("%s %s\n", f.name, formatValue(float64(f.counterFn())))
	case kindGauge:
		return w.printf("%s %s\n", f.name, formatValue(float64(f.gauge.Value())))
	case kindGaugeFunc:
		return w.printf("%s %s\n", f.name, formatValue(f.gaugeFn()))
	case kindInfo:
		return w.printf("%s{%s} 1\n", f.name, f.infoLabels)
	case kindHistogram:
		return writeHistogram(w, f.name, "", f.hist)
	case kindCounterVec:
		for _, child := range f.vecSnapshot() {
			// child.value is pre-escaped by vecSnapshot — emit verbatim.
			if err := w.printf("%s{%s=\"%s\"} %s\n", f.name, f.label, child.value,
				formatValue(float64(child.counter.Value()))); err != nil {
				return err
			}
		}
		return nil
	case kindHistogramVec:
		for _, child := range f.vecSnapshot() {
			sel := fmt.Sprintf("%s=\"%s\"", f.label, child.value)
			if err := writeHistogram(w, f.name, sel, child.hist); err != nil {
				return err
			}
		}
		return nil
	case kindGaugeVecFunc:
		for _, child := range f.vecSnapshot() {
			if err := w.printf("%s{%s=\"%s\"} %s\n", f.name, f.label, child.value,
				formatValue(child.gaugeFn())); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

// vecChild is one (label value, handle) pair of a vec snapshot.
type vecChild struct {
	value   string
	counter *Counter
	hist    *Histogram
	gaugeFn func() float64
}

// vecSnapshot copies a vec's children out under the read lock, sorted by
// label value for deterministic exposition.
func (f *family) vecSnapshot() []vecChild {
	f.vecMu.RLock()
	out := make([]vecChild, 0, len(f.vecOrder))
	for _, v := range f.vecOrder {
		out = append(out, vecChild{value: escapeLabel(v), counter: f.vecCounters[v], hist: f.vecHists[v], gaugeFn: f.vecGaugeFns[v]})
	}
	f.vecMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// writeHistogram emits one histogram child: cumulative buckets (including
// the +Inf bucket), _sum and _count. sel is the extra label selector
// (`algo="lctc"`) or "".
func writeHistogram(w *countingWriter, name, sel string, h *Histogram) error {
	snap := h.Snapshot()
	bracket := func(le string) string {
		if sel == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", sel, le)
	}
	plain := ""
	if sel != "" {
		plain = "{" + sel + "}"
	}
	var cum uint64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		if err := w.printf("%s_bucket%s %d\n", name, bracket(formatValue(bound)), cum); err != nil {
			return err
		}
	}
	cum += snap.Counts[len(snap.Bounds)]
	if err := w.printf("%s_bucket%s %d\n", name, bracket("+Inf"), cum); err != nil {
		return err
	}
	if err := w.printf("%s_sum%s %g\n", name, plain, snap.Sum); err != nil {
		return err
	}
	return w.printf("%s_count%s %d\n", name, plain, snap.Count)
}

// Handler serves the registry at GET /metrics in text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// ---- Minimal text-format parser -------------------------------------------
//
// ParseText implements just enough of the Prometheus text format to
// validate this registry's own output in tests and tools: HELP/TYPE
// headers, scalar samples, and labeled samples. It is a validator, not a
// general scraper.

// ParsedSample is one sample line: the metric name (including _bucket/_sum/
// _count suffixes for histograms), its raw label pairs, and the value.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one family: the HELP/TYPE header plus its samples in
// exposition order.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseText parses text exposition format into families keyed by name.
// Every sample must belong to a family whose # TYPE line preceded it
// (histogram samples match their base family by stripping the _bucket/
// _sum/_count suffix).
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := fams[name]
			if f == nil {
				f = &ParsedFamily{Name: name}
				fams[name] = f
			}
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			f := fams[name]
			if f == nil {
				f = &ParsedFamily{Name: name}
				fams[name] = f
			}
			if f.Type != "" && f.Type != typ {
				return nil, fmt.Errorf("line %d: family %s re-typed %s -> %s", lineNo, name, f.Type, typ)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := fams[baseName(s.Name, fams)]
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before its # TYPE header", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// baseName resolves a sample name to its family name: exact match first,
// then the histogram suffixes stripped.
func baseName(name string, fams map[string]*ParsedFamily) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok {
			if _, exists := fams[b]; exists {
				return b
			}
		}
	}
	return name
}

func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, errors.New("unterminated label set")
		}
		if err := parseLabels(line[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("no value on sample line %q", line)
		}
	}
	valStr := strings.Fields(rest)
	if len(valStr) == 0 {
		return s, fmt.Errorf("no value on sample line %q", line)
	}
	v, err := parseFloat(valStr[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"` into dst, unescaping values.
func parseLabels(s string, dst map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed labels %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value after %s", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated value for label %s", key)
		}
		dst[key] = val.String()
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}
