// Package telemetry is the observability plane of the serving stack: a
// dependency-free metrics registry whose hot-path operations (counter
// increments, gauge stores, histogram observations) are single atomic
// instructions with zero allocations, a Prometheus text-exposition writer
// for /metrics scraping, a per-query phase tracer feeding per-algo and
// per-tenant latency histograms, and a ring-buffered slow-query log.
//
// Design rules, in order of importance:
//
//   - Recording a sample must never allocate and never take a lock. Metric
//     handles are resolved once at wiring time (a *Counter, *Gauge or
//     *Histogram pointer); the per-sample path is atomic adds only. Vec
//     children are cached behind an RWMutex — resolve them once and keep
//     the pointer, or accept one read-lock per sample.
//   - Every metric op is safe on a nil receiver (a no-op), so instrumented
//     packages hold possibly-nil handles instead of branching on "telemetry
//     enabled" at every site.
//   - Readers never perturb writers: Snapshot/WriteTo read the atomics
//     without stopping them, so a scrape observes each bucket at some point
//     during its execution (bucket cumulativity is still exact because the
//     cumulative sums are computed from one read of the per-bucket counts).
//   - Func metrics (CounterFunc/GaugeFunc) read external state at scrape
//     time, so subsystems that already keep atomic counters (the admission
//     gate, the WAL, the workspace pool) are exposed without double
//     accounting.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is usable;
// all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (n < 0 is ignored — counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is usable; all
// methods are nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bounds for query-shaped
// latencies, in seconds: 100µs to 10s, roughly ×2.5 per step. Sixteen
// buckets keeps Observe's linear scan trivially cheap while resolving both
// a 12µs cache hit (first bucket) and a 9s pathological peel (last).
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefFsyncBuckets are the default bounds for fsync-shaped latencies,
// in seconds: 50µs (NVMe) up to 1s (a stalling disk).
var DefFsyncBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// Histogram is a fixed-bucket latency histogram: cumulative-on-read bucket
// counts, a sum, and a derived count, matching the Prometheus histogram
// data model. Observe is lock-free: one linear scan over ~14 bounds plus
// two atomic adds. All methods are nil-safe.
type Histogram struct {
	bounds []float64 // ascending upper bounds in seconds; +Inf is implicit
	counts []atomic.Uint64
	sumNS  atomic.Int64
}

// newHistogram builds a histogram over the given ascending bucket bounds
// (seconds). Bounds are copied; an empty slice gets DefLatencyBuckets.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(b) {
		panic("telemetry: histogram bounds must be ascending")
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// HistogramSnapshot is one consistent read of a histogram: per-bucket
// (non-cumulative) counts, the derived total count, and the sum in seconds.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra +Inf slot
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot reads the histogram without stopping writers. Count is derived
// from the bucket counts read, so cumulative bucket emission is always
// internally consistent (Sum may trail by in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		snap.Counts[i] = c
		snap.Count += c
	}
	snap.Sum = float64(h.sumNS.Load()) / float64(time.Second)
	return snap
}

// metricKind discriminates family entries in the registry.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterVec
	kindHistogramVec
	kindGaugeVecFunc
	kindInfo
)

// family is one registered metric family: a name, help text, and either a
// scalar handle, a func, a vec of labeled children, or a constant info
// sample.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // vec label key, "" otherwise

	counter   *Counter
	counterFn func() int64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram

	vecMu       sync.RWMutex
	vecCounters map[string]*Counter
	vecHists    map[string]*Histogram
	vecGaugeFns map[string]func() float64
	vecOrder    []string
	vecMax      int
	histBounds  []float64

	infoLabels string // pre-rendered {k="v",...} for kindInfo
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Register every family once at wiring time; duplicate
// names panic (a programmer error, like a duplicate flag).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) add(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", f.name))
	}
	r.families[f.name] = f
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotone non-decreasing and safe for concurrent use.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, kind: kindCounterFunc, counterFn: fn})
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// NewHistogram registers and returns a histogram over the given ascending
// bucket bounds in seconds (nil = DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.add(&family{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// NewInfo registers a constant gauge-1 sample carrying build-style labels
// (the node_exporter "info metric" pattern). Label order is preserved.
func (r *Registry) NewInfo(name, help string, labels [][2]string) {
	var b strings.Builder
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[1]))
		b.WriteByte('"')
	}
	r.add(&family{name: name, help: help, kind: kindInfo, infoLabels: b.String()})
}

// vecDefaultMax bounds the children of one vec so an unbounded label (a
// tenant name from the wire) cannot grow the registry without limit; the
// excess lands on the "_other" child.
const vecDefaultMax = 64

// VecOverflowLabel is the label value that absorbs samples past a vec's
// child limit.
const VecOverflowLabel = "_other"

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family. Children are created on
// first With and capped at a bounded cardinality (overflow lands on
// VecOverflowLabel).
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	f := &family{
		name: name, help: help, kind: kindCounterVec, label: label,
		vecCounters: make(map[string]*Counter), vecMax: vecDefaultMax,
	}
	r.add(f)
	return &CounterVec{f: f}
}

// With returns the child counter for the label value, creating it on first
// use. Resolve once and keep the pointer on hot paths. Nil-safe.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	f := v.f
	f.vecMu.RLock()
	c := f.vecCounters[value]
	f.vecMu.RUnlock()
	if c != nil {
		return c
	}
	f.vecMu.Lock()
	defer f.vecMu.Unlock()
	if c = f.vecCounters[value]; c != nil {
		return c
	}
	if len(f.vecOrder) >= f.vecMax {
		// Cardinality cap: the excess value lands on the shared overflow
		// child (created here if this is the first overflowing sample).
		value = VecOverflowLabel
		if c = f.vecCounters[value]; c != nil {
			return c
		}
	}
	c = &Counter{}
	f.vecCounters[value] = c
	f.vecOrder = append(f.vecOrder, value)
	return c
}

// GaugeVecFunc is a gauge family with one label dimension whose children
// read their values from callbacks at scrape time. It is the labeled
// analogue of NewGaugeFunc, built for subsystems that already keep
// per-instance state (the shard router exposes each shard's epoch, graph
// size and queue depth this way without double accounting).
type GaugeVecFunc struct{ f *family }

// NewGaugeVecFunc registers a labeled func-backed gauge family. Children
// are registered with With at wiring time; each fn is called at scrape time
// and must be safe for concurrent use.
func (r *Registry) NewGaugeVecFunc(name, help, label string) *GaugeVecFunc {
	f := &family{
		name: name, help: help, kind: kindGaugeVecFunc, label: label,
		vecGaugeFns: make(map[string]func() float64), vecMax: vecDefaultMax,
	}
	r.add(f)
	return &GaugeVecFunc{f: f}
}

// With registers fn as the child for the label value. Re-registering a
// value replaces its fn; past the cardinality cap the registration is
// dropped (scrape-time funcs have no meaningful overflow aggregation).
// Nil-safe.
func (v *GaugeVecFunc) With(value string, fn func() float64) {
	if v == nil || fn == nil {
		return
	}
	f := v.f
	f.vecMu.Lock()
	defer f.vecMu.Unlock()
	if _, ok := f.vecGaugeFns[value]; ok {
		f.vecGaugeFns[value] = fn
		return
	}
	if len(f.vecOrder) >= f.vecMax {
		return
	}
	f.vecGaugeFns[value] = fn
	f.vecOrder = append(f.vecOrder, value)
}

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family over the given
// bucket bounds (nil = DefLatencyBuckets); children share the bounds.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	f := &family{
		name: name, help: help, kind: kindHistogramVec, label: label,
		vecHists: make(map[string]*Histogram), vecMax: vecDefaultMax,
		histBounds: append([]float64(nil), bounds...),
	}
	r.add(f)
	return &HistogramVec{f: f}
}

// With returns the child histogram for the label value, creating it on
// first use. Resolve once and keep the pointer on hot paths. Nil-safe.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	f.vecMu.RLock()
	h := f.vecHists[value]
	f.vecMu.RUnlock()
	if h != nil {
		return h
	}
	f.vecMu.Lock()
	defer f.vecMu.Unlock()
	if h = f.vecHists[value]; h != nil {
		return h
	}
	if len(f.vecOrder) >= f.vecMax {
		value = VecOverflowLabel
		if h = f.vecHists[value]; h != nil {
			return h
		}
	}
	h = newHistogram(f.histBounds)
	f.vecHists[value] = h
	f.vecOrder = append(f.vecOrder, value)
	return h
}

// sortedFamilies snapshots the registered families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, non-integers in shortest-float form, +Inf spelled
// out.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the text-format rules.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes HELP text per the text-format rules.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
