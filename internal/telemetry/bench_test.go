package telemetry

import (
	"io"
	"testing"
	"time"
)

// BenchmarkTelemetryOverhead measures the per-sample cost of each hot-path
// primitive. Recorded in BENCH_pr8.json; the bar is single-digit
// nanoseconds and 0 allocs/op for everything but scrape.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("CounterInc", func(b *testing.B) {
		r := NewRegistry()
		c := r.NewCounter("b_total", "c")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		r := NewRegistry()
		h := r.NewHistogram("b_seconds", "h", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	})
	b.Run("VecWith", func(b *testing.B) {
		r := NewRegistry()
		hv := r.NewHistogramVec("b_vec_seconds", "hv", "algo", nil)
		hv.With("LCTC")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hv.With("LCTC").Observe(time.Millisecond)
		}
	})
	b.Run("TracerObserve", func(b *testing.B) {
		r := NewRegistry()
		tr := NewTracer(r, TracerOptions{SlowThreshold: time.Hour})
		rec := QueryRecord{
			Algo: "LCTC", Tenant: "bench", Outcome: "ok", Epoch: 1,
			Seed: 50 * time.Microsecond, Expand: 200 * time.Microsecond,
			Peel: 100 * time.Microsecond, QueueWait: 10 * time.Microsecond,
			Total: 400 * time.Microsecond,
		}
		tr.Observe(rec)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Observe(rec)
		}
	})
	b.Run("TracerObserveNil", func(b *testing.B) {
		var tr *Tracer
		rec := QueryRecord{Algo: "LCTC", Outcome: "ok", Total: time.Millisecond}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Observe(rec)
		}
	})
	b.Run("Scrape", func(b *testing.B) {
		r := NewRegistry()
		tr := NewTracer(r, TracerOptions{})
		RegisterBuildInfo(r)
		for _, algo := range []string{"LCTC", "Basic", "BD", "Truss"} {
			tr.Observe(QueryRecord{Algo: algo, Outcome: "ok", Total: time.Millisecond,
				Seed: time.Microsecond, Expand: time.Microsecond, Peel: time.Microsecond})
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.WriteTo(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}
