package telemetry

import (
	"sync"
	"time"
)

// QueryRecord is one completed (or shed) query as the telemetry plane sees
// it: identity (algo, tenant, epoch), the phase breakdown from
// core.QueryStats, the client-observed total, and the outcome. It is a
// plain value — building one on the stack and passing it to
// Tracer.Observe allocates nothing.
type QueryRecord struct {
	// Time is the completion time (stamped by Observe if zero).
	Time time.Time `json:"time"`
	// Algo is the algorithm's display name ("LCTC", "Basic", "BD",
	// "Truss"), or "" for requests shed before dispatch.
	Algo string `json:"algo"`
	// Tenant is the requesting tenant ("" = anonymous).
	Tenant string `json:"tenant,omitempty"`
	// Epoch is the serving epoch the query ran against (0 if it never
	// reached a snapshot).
	Epoch int64 `json:"epoch"`
	// Outcome classifies how the query ended: "ok", "no_community",
	// "bad_request", "canceled", "deadline", "shed", or "error".
	Outcome string `json:"outcome"`
	// CacheHit reports an epoch-keyed cache answer (the phase fields are
	// then zero — the stored breakdown describes the original execution,
	// not this request).
	CacheHit bool `json:"cache_hit,omitempty"`

	// Phase breakdown (wall clock). Total is the client-observed latency
	// including queue wait; Seed/Expand/Peel are the pipeline phases.
	Seed      time.Duration `json:"seed"`
	Expand    time.Duration `json:"expand"`
	Peel      time.Duration `json:"peel"`
	QueueWait time.Duration `json:"queue_wait"`
	Total     time.Duration `json:"total"`

	// Work volume, for judging whether a slow query was big or stuck.
	SeedEdges   int `json:"seed_edges"`
	PeelRounds  int `json:"peel_rounds"`
	EdgesPeeled int `json:"edges_peeled"`
}

// TracerOptions tunes a Tracer. The zero value selects the defaults.
type TracerOptions struct {
	// SlowThreshold: queries whose client-observed total reaches it enter
	// the slow-query log. Default 250ms; negative disables the slowlog.
	SlowThreshold time.Duration
	// SlowLogEntries bounds the slowlog ring. Default 128.
	SlowLogEntries int
	// AlgoLabels pre-registers the per-algorithm latency children at
	// construction. The vec bounds its cardinality (64 children, overflow
	// folds into "_other"), so frontends pass the full algorithm-name
	// registry here to guarantee every served algorithm gets its own
	// series instead of racing for slots at first use.
	AlgoLabels []string
}

func (o TracerOptions) withDefaults() TracerOptions {
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.SlowLogEntries <= 0 {
		o.SlowLogEntries = 128
	}
	return o
}

// Tracer turns per-query records into metrics and the slow-query log. All
// methods are nil-safe, so an uninstrumented manager passes a nil *Tracer
// and pays a single pointer comparison per query.
type Tracer struct {
	slowThreshold time.Duration
	slowlog       *slowLog

	latency       *HistogramVec // by algo
	tenantLatency *HistogramVec // by tenant
	phase         *HistogramVec // by phase: seed | expand | peel
	queueWait     *Histogram
	outcomes      *CounterVec
	slowTotal     *Counter

	// Pre-resolved phase children: Observe must not take the vec's read
	// lock three times per query.
	phaseSeed, phaseExpand, phasePeel *Histogram
}

// NewTracer builds a tracer and registers its metric families
// (ctc_query_*) in reg.
func NewTracer(reg *Registry, opt TracerOptions) *Tracer {
	opt = opt.withDefaults()
	t := &Tracer{
		slowThreshold: opt.SlowThreshold,
		slowlog:       newSlowLog(opt.SlowLogEntries),
		latency: reg.NewHistogramVec("ctc_query_duration_seconds",
			"Client-observed query latency (queue wait included), by algorithm.",
			"algo", nil),
		tenantLatency: reg.NewHistogramVec("ctc_query_tenant_duration_seconds",
			"Client-observed query latency (queue wait included), by tenant (bounded cardinality; excess tenants land on \"_other\").",
			"tenant", nil),
		phase: reg.NewHistogramVec("ctc_query_phase_duration_seconds",
			"Per-phase execution time of non-cached queries: seed (FindG0/Steiner), expand (LCTC expansion+extraction), peel (free-rider removal).",
			"phase", nil),
		queueWait: reg.NewHistogram("ctc_query_queue_wait_seconds",
			"Time spent in the admission queue before a concurrency slot was granted.", nil),
		outcomes: reg.NewCounterVec("ctc_queries_total",
			"Completed queries by outcome: ok, no_community, bad_request, canceled, deadline, shed, error.",
			"outcome"),
		slowTotal: reg.NewCounter("ctc_slow_queries_total",
			"Queries whose client-observed total reached the slow-query threshold."),
	}
	t.phaseSeed = t.phase.With("seed")
	t.phaseExpand = t.phase.With("expand")
	t.phasePeel = t.phase.With("peel")
	for _, a := range opt.AlgoLabels {
		t.latency.With(a)
	}
	return t
}

// SlowThreshold returns the configured slow-query threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slowThreshold
}

// Observe records one query. Zero allocations once the record's algo and
// tenant children exist (algo children are the fixed algorithm registry,
// pre-registered via TracerOptions.AlgoLabels; tenant children are capped
// by the vec's cardinality bound).
func (t *Tracer) Observe(rec QueryRecord) {
	if t == nil {
		return
	}
	t.outcomes.With(rec.Outcome).Inc()
	if rec.Algo != "" {
		t.latency.With(rec.Algo).Observe(rec.Total)
	}
	t.tenantLatency.With(rec.Tenant).Observe(rec.Total)
	if !rec.CacheHit {
		t.queueWait.Observe(rec.QueueWait)
		// Zero-duration phases are structural (Expand outside LCTC, Peel
		// under TrussOnly), not fast executions; observing them would pile
		// fake samples into the first bucket.
		if rec.Seed > 0 {
			t.phaseSeed.Observe(rec.Seed)
		}
		if rec.Expand > 0 {
			t.phaseExpand.Observe(rec.Expand)
		}
		if rec.Peel > 0 {
			t.phasePeel.Observe(rec.Peel)
		}
	}
	if t.slowThreshold > 0 && rec.Total >= t.slowThreshold {
		t.slowTotal.Inc()
		if rec.Time.IsZero() {
			rec.Time = time.Now()
		}
		t.slowlog.push(rec)
	}
}

// SlowQueries returns the slow-query log, newest first.
func (t *Tracer) SlowQueries() []QueryRecord {
	if t == nil {
		return nil
	}
	return t.slowlog.snapshot()
}

// SlowTotal returns how many queries crossed the slow threshold.
func (t *Tracer) SlowTotal() int64 {
	if t == nil {
		return 0
	}
	return t.slowTotal.Value()
}

// slowLog is a fixed-capacity ring of the most recent slow queries.
// push copies the record into a preallocated slot — no allocation, one
// short mutex hold, and only on the (rare) slow path.
type slowLog struct {
	mu    sync.Mutex
	buf   []QueryRecord
	next  int
	count int
}

func newSlowLog(capacity int) *slowLog {
	return &slowLog{buf: make([]QueryRecord, capacity)}
}

func (l *slowLog) push(rec QueryRecord) {
	l.mu.Lock()
	l.buf[l.next] = rec
	l.next = (l.next + 1) % len(l.buf)
	if l.count < len(l.buf) {
		l.count++
	}
	l.mu.Unlock()
}

// snapshot copies the ring out, newest first.
func (l *slowLog) snapshot() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.buf[(l.next-1-i+len(l.buf))%len(l.buf)]
	}
	return out
}
