package telemetry

import (
	"encoding/json"
	"net/http"
	"time"
)

// slowEntry is the wire shape of one slowlog record: timings in
// microseconds, matching the /query response's stats block.
type slowEntry struct {
	Time        string `json:"time"`
	Algo        string `json:"algo"`
	Tenant      string `json:"tenant,omitempty"`
	Epoch       int64  `json:"epoch"`
	Outcome     string `json:"outcome"`
	CacheHit    bool   `json:"cache_hit,omitempty"`
	SeedUS      int64  `json:"seed_us"`
	ExpandUS    int64  `json:"expand_us"`
	PeelUS      int64  `json:"peel_us"`
	QueueWaitUS int64  `json:"queue_wait_us"`
	TotalUS     int64  `json:"total_us"`
	SeedEdges   int    `json:"seed_edges"`
	PeelRounds  int    `json:"peel_rounds"`
	EdgesPeeled int    `json:"edges_peeled"`
}

type slowLogResponse struct {
	ThresholdMS float64     `json:"threshold_ms"`
	Total       int64       `json:"total_slow"`
	Entries     []slowEntry `json:"entries"`
}

// SlowLogHandler serves the slow-query ring as JSON at GET /debug/slowlog:
// newest first, phase breakdown in microseconds, plus the configured
// threshold and the all-time slow count.
func (t *Tracer) SlowLogHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := slowLogResponse{Entries: []slowEntry{}}
		if t != nil {
			resp.ThresholdMS = float64(t.slowThreshold.Microseconds()) / 1000
			resp.Total = t.SlowTotal()
			for _, rec := range t.SlowQueries() {
				resp.Entries = append(resp.Entries, slowEntry{
					Time:        rec.Time.Format(time.RFC3339Nano),
					Algo:        rec.Algo,
					Tenant:      rec.Tenant,
					Epoch:       rec.Epoch,
					Outcome:     rec.Outcome,
					CacheHit:    rec.CacheHit,
					SeedUS:      rec.Seed.Microseconds(),
					ExpandUS:    rec.Expand.Microseconds(),
					PeelUS:      rec.Peel.Microseconds(),
					QueueWaitUS: rec.QueueWait.Microseconds(),
					TotalUS:     rec.Total.Microseconds(),
					SeedEdges:   rec.SeedEdges,
					PeelRounds:  rec.PeelRounds,
					EdgesPeeled: rec.EdgesPeeled,
				})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}
