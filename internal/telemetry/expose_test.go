package telemetry

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// validateHistogramFamily checks the Prometheus histogram invariants on a
// parsed family: cumulative non-decreasing buckets per child, a trailing
// +Inf bucket equal to _count, and _sum present. Shared with the e2e
// /metrics tests in cmd/ctcserve.
func validateHistogramFamily(t *testing.T, fam *ParsedFamily, name string) {
	t.Helper()
	if fam == nil {
		t.Fatalf("family %s missing", name)
	}
	if fam.Type != "histogram" {
		t.Fatalf("family %s has type %q, want histogram", name, fam.Type)
	}
	// Group samples by their non-le label set so vec children validate
	// independently.
	type child struct {
		buckets []ParsedSample
		sum     *ParsedSample
		count   *ParsedSample
	}
	children := map[string]*child{}
	key := func(labels map[string]string) string {
		var parts []string
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		// At most one extra label in this registry.
		return strings.Join(parts, ",")
	}
	for i := range fam.Samples {
		s := fam.Samples[i]
		c := children[key(s.Labels)]
		if c == nil {
			c = &child{}
			children[key(s.Labels)] = c
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			c.buckets = append(c.buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			c.sum = &fam.Samples[i]
		case strings.HasSuffix(s.Name, "_count"):
			c.count = &fam.Samples[i]
		default:
			t.Fatalf("family %s: unexpected sample %s", name, s.Name)
		}
	}
	if len(children) == 0 {
		t.Fatalf("family %s has no samples", name)
	}
	for sel, c := range children {
		if c.sum == nil || c.count == nil {
			t.Fatalf("family %s{%s}: missing _sum or _count", name, sel)
		}
		if len(c.buckets) == 0 {
			t.Fatalf("family %s{%s}: no buckets", name, sel)
		}
		prevLE := math.Inf(-1)
		prevCum := -1.0
		for _, b := range c.buckets {
			le, err := parseFloat(b.Labels["le"])
			if err != nil {
				t.Fatalf("family %s{%s}: bad le %q", name, sel, b.Labels["le"])
			}
			if le <= prevLE {
				t.Fatalf("family %s{%s}: le %v not ascending after %v", name, sel, le, prevLE)
			}
			if b.Value < prevCum {
				t.Fatalf("family %s{%s}: bucket le=%v count %v < previous %v (not cumulative)",
					name, sel, le, b.Value, prevCum)
			}
			prevLE, prevCum = le, b.Value
		}
		last := c.buckets[len(c.buckets)-1]
		if !math.IsInf(prevLE, 1) {
			t.Fatalf("family %s{%s}: last bucket le=%v, want +Inf", name, sel, prevLE)
		}
		if last.Value != c.count.Value {
			t.Fatalf("family %s{%s}: +Inf bucket %v != _count %v", name, sel, last.Value, c.count.Value)
		}
	}
}

func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.NewCounter("e_requests_total", "Requests served.")
	c.Add(42)
	g := r.NewGauge("e_depth", "Queue depth.")
	g.Set(-3)
	r.NewGaugeFunc("e_ratio", "A fractional gauge.", func() float64 { return 0.625 })
	r.NewCounterFunc("e_external_total", "External counter.", func() int64 { return 7 })
	h := r.NewHistogram("e_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)
	hv := r.NewHistogramVec("e_algo_seconds", "Latency by algo.", "algo", []float64{0.01, 1})
	hv.With("LCTC").Observe(5 * time.Millisecond)
	hv.With("Basic").Observe(2 * time.Second)
	cv := r.NewCounterVec("e_outcomes_total", "Outcomes.", "outcome")
	cv.With("ok").Add(9)
	cv.With(`we"ird\la
bel`).Inc()
	r.NewInfo("e_build_info", "Build identity.", [][2]string{{"go_version", "go1.24"}, {"revision", "abc123"}})
	return r
}

func TestExpositionRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own output unparseable: %v\n%s", err, text)
	}

	wantTypes := map[string]string{
		"e_requests_total":  "counter",
		"e_external_total":  "counter",
		"e_outcomes_total":  "counter",
		"e_depth":           "gauge",
		"e_ratio":           "gauge",
		"e_build_info":      "gauge",
		"e_latency_seconds": "histogram",
		"e_algo_seconds":    "histogram",
	}
	for name, typ := range wantTypes {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing from:\n%s", name, text)
		}
		if f.Type != typ {
			t.Errorf("family %s type = %q, want %q", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("family %s has no HELP", name)
		}
	}

	if v := fams["e_requests_total"].Samples[0].Value; v != 42 {
		t.Errorf("e_requests_total = %v, want 42", v)
	}
	if v := fams["e_depth"].Samples[0].Value; v != -3 {
		t.Errorf("e_depth = %v, want -3", v)
	}
	if v := fams["e_ratio"].Samples[0].Value; v != 0.625 {
		t.Errorf("e_ratio = %v, want 0.625", v)
	}

	validateHistogramFamily(t, fams["e_latency_seconds"], "e_latency_seconds")
	validateHistogramFamily(t, fams["e_algo_seconds"], "e_algo_seconds")

	// Spot-check exact cumulative values for the scalar histogram.
	var inf001, infAll float64
	for _, s := range fams["e_latency_seconds"].Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			switch s.Labels["le"] {
			case "0.001":
				inf001 = s.Value
			case "+Inf":
				infAll = s.Value
			}
		}
	}
	if inf001 != 1 || infAll != 3 {
		t.Errorf("e_latency_seconds buckets le=0.001:%v le=+Inf:%v, want 1 and 3", inf001, infAll)
	}

	// Label escaping must round-trip through the parser.
	found := false
	for _, s := range fams["e_outcomes_total"].Samples {
		if s.Labels["outcome"] == "we\"ird\\la\nbel" {
			found = true
			if s.Value != 1 {
				t.Errorf("escaped-label counter = %v, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Errorf("escaped label did not round-trip:\n%s", text)
	}

	// Info metric carries its constant labels.
	bi := fams["e_build_info"].Samples[0]
	if bi.Value != 1 || bi.Labels["go_version"] != "go1.24" || bi.Labels["revision"] != "abc123" {
		t.Errorf("e_build_info = %+v, want value 1 with go_version/revision labels", bi)
	}

	// Vec children appear once per label value, sorted.
	algoLabels := []string{}
	for _, s := range fams["e_algo_seconds"].Samples {
		if strings.HasSuffix(s.Name, "_count") {
			algoLabels = append(algoLabels, s.Labels["algo"])
		}
	}
	if len(algoLabels) != 2 || algoLabels[0] != "Basic" || algoLabels[1] != "LCTC" {
		t.Errorf("algo children = %v, want [Basic LCTC]", algoLabels)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := buildTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseText(strings.NewReader(string(body))); err != nil {
		t.Fatalf("handler output unparseable: %v", err)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{0.625, "0.625"},
		{0.0001, "0.0001"},
		{math.Inf(1), "+Inf"},
	}
	for _, tc := range cases {
		if got := formatValue(tc.in); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTracerSlowlog(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerOptions{SlowThreshold: 10 * time.Millisecond, SlowLogEntries: 3})
	fast := QueryRecord{Algo: "LCTC", Outcome: "ok", Total: time.Millisecond}
	tr.Observe(fast)
	for i := 1; i <= 5; i++ {
		tr.Observe(QueryRecord{
			Algo: "Basic", Outcome: "ok", Epoch: int64(i),
			Seed: time.Millisecond, Peel: 20 * time.Millisecond,
			Total: time.Duration(i) * 25 * time.Millisecond,
		})
	}
	if got := tr.SlowTotal(); got != 5 {
		t.Fatalf("SlowTotal = %d, want 5", got)
	}
	slow := tr.SlowQueries()
	if len(slow) != 3 {
		t.Fatalf("slowlog holds %d entries, want ring capacity 3", len(slow))
	}
	// Newest first: epochs 5, 4, 3.
	for i, wantEpoch := range []int64{5, 4, 3} {
		if slow[i].Epoch != wantEpoch {
			t.Errorf("slowlog[%d].Epoch = %d, want %d", i, slow[i].Epoch, wantEpoch)
		}
		if slow[i].Time.IsZero() {
			t.Errorf("slowlog[%d] has no timestamp", i)
		}
	}

	// The slowlog HTTP handler serves the same data as JSON.
	srv := httptest.NewServer(tr.SlowLogHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{`"threshold_ms":10`, `"total_slow":5`, `"algo":"Basic"`, `"peel_us":20000`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("slowlog response missing %s:\n%s", want, body)
		}
	}

	// Outcome and algo counters recorded alongside.
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	validateHistogramFamily(t, fams["ctc_query_duration_seconds"], "ctc_query_duration_seconds")
	validateHistogramFamily(t, fams["ctc_query_phase_duration_seconds"], "ctc_query_phase_duration_seconds")
	var ok float64
	for _, s := range fams["ctc_queries_total"].Samples {
		if s.Labels["outcome"] == "ok" {
			ok = s.Value
		}
	}
	if ok != 6 {
		t.Errorf("ctc_queries_total{outcome=ok} = %v, want 6", ok)
	}
	if v := fams["ctc_slow_queries_total"].Samples[0].Value; v != 5 {
		t.Errorf("ctc_slow_queries_total = %v, want 5", v)
	}
}

func TestTracerDisabledSlowlog(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerOptions{SlowThreshold: -1})
	tr.Observe(QueryRecord{Algo: "LCTC", Outcome: "ok", Total: time.Hour})
	if got := tr.SlowTotal(); got != 0 {
		t.Fatalf("disabled slowlog recorded %d entries", got)
	}
	if got := len(tr.SlowQueries()); got != 0 {
		t.Fatalf("disabled slowlog returned %d entries", got)
	}
}

func TestCacheHitSkipsPhases(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerOptions{SlowThreshold: -1})
	tr.Observe(QueryRecord{Algo: "LCTC", Outcome: "ok", CacheHit: true,
		Seed: time.Second, Total: time.Millisecond})
	if snap := tr.phaseSeed.Snapshot(); snap.Count != 0 {
		t.Errorf("cache hit recorded %d phase samples, want 0", snap.Count)
	}
	if snap := tr.queueWait.Snapshot(); snap.Count != 0 {
		t.Errorf("cache hit recorded %d queue-wait samples, want 0", snap.Count)
	}
	if snap := tr.latency.With("LCTC").Snapshot(); snap.Count != 1 {
		t.Errorf("cache hit not in latency histogram: count %d, want 1", snap.Count)
	}
}

// TestTracerAlgoLabelPreregistration: AlgoLabels children exist in the
// exposition before any query is observed, so dashboards see every served
// algorithm from scrape one and late registrations cannot land in "_other".
func TestTracerAlgoLabelPreregistration(t *testing.T) {
	r := NewRegistry()
	labels := []string{"LCTC", "Basic", "DTruss", "ProbTruss", "MDC", "QDC"}
	NewTracer(r, TracerOptions{SlowThreshold: -1, AlgoLabels: labels})
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, a := range labels {
		series := `ctc_query_duration_seconds_count{algo="` + a + `"} 0`
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing pre-registered series %q", series)
		}
	}
}
