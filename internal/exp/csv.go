package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// WriteCSV emits the figure as a CSV file: one row per x tick, one column
// per series (Inf rendered as "Inf", NaN as empty).
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range f.X {
		row := []string{x}
		for _, s := range f.Series {
			row = append(row, csvCell(s.Y[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the table verbatim.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func csvCell(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "Inf"
	case math.IsNaN(v):
		return ""
	default:
		return fmt.Sprintf("%g", v)
	}
}

// SaveFiguresCSV writes each figure to dir/<ID>.csv.
func SaveFiguresCSV(dir string, figs []*Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range figs {
		file, err := os.Create(filepath.Join(dir, f.ID+".csv"))
		if err != nil {
			return err
		}
		if err := f.WriteCSV(file); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
	}
	return nil
}

// SaveTableCSV writes the table to dir/<ID>.csv.
func SaveTableCSV(dir string, t *Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	file, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer file.Close()
	return t.WriteCSV(file)
}
