package exp

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/quality"
)

// pointAccumulator gathers per-query measurements for one x value of an
// Exp-1 figure triple (time / kept-percentage / density).
type pointAccumulator struct {
	times, percents, densities map[string][]float64
	timeouts                   map[string]int
}

func newPointAccumulator() *pointAccumulator {
	return &pointAccumulator{
		times:     map[string][]float64{},
		percents:  map[string][]float64{},
		densities: map[string][]float64{},
		timeouts:  map[string]int{},
	}
}

// exp1Algos are the methods compared in Figures 5-10.
var exp1Algos = []string{"Basic", "BD", "LCTC"}

// runOneQuery measures the three algorithms on a single query set.
func runOneQuery(s *core.Searcher, q []int, cfg Config, acc *pointAccumulator) bool {
	truss, err := s.TrussOnly(q, nil)
	if err != nil {
		return false // infeasible query; resample
	}
	g0N := truss.N()
	run := func(name string, fn func([]int, *core.Options) (*core.Community, error), opt *core.Options) {
		var c *core.Community
		secs, err := timed(func() error {
			var e error
			c, e = fn(q, opt)
			return e
		})
		if errors.Is(err, core.ErrTimeout) {
			acc.timeouts[name]++
			acc.times[name] = append(acc.times[name], Inf)
			return
		}
		if err != nil {
			return
		}
		acc.times[name] = append(acc.times[name], secs)
		acc.percents[name] = append(acc.percents[name], quality.KeptPercent(c.N(), g0N))
		acc.densities[name] = append(acc.densities[name], c.Density())
	}
	run("Basic", s.Basic, &core.Options{Timeout: cfg.basicTimeout()})
	run("BD", s.BulkDelete, nil)
	run("LCTC", s.LCTC, nil)
	return true
}

// mean that propagates Inf: if any run timed out, the averaged time is Inf
// (the paper plots Inf for Basic when it exceeds the hour budget).
func meanWithInf(xs []float64) float64 {
	if len(xs) == 0 {
		return Inf
	}
	s := 0.0
	for _, x := range xs {
		if x == Inf {
			return Inf
		}
		s += x
	}
	return s / float64(len(xs))
}

// figuresFromAccumulators assembles the standard (time, percentage, density)
// figure triple.
func figuresFromAccumulators(id, network, xlabel string, xs []string, accs []*pointAccumulator) []*Figure {
	mk := func(suffix, ylabel string, pick func(*pointAccumulator, string) []float64) *Figure {
		f := &Figure{
			ID:     id + suffix,
			Title:  fmt.Sprintf("%s: %s vs %s", network, ylabel, xlabel),
			XLabel: xlabel,
			X:      xs,
			YLabel: ylabel,
		}
		for _, algo := range exp1Algos {
			ys := make([]float64, len(accs))
			for i, acc := range accs {
				vals := pick(acc, algo)
				if suffix == "a" {
					ys[i] = meanWithInf(vals)
				} else if len(vals) == 0 {
					ys[i] = Inf
				} else {
					ys[i] = quality.Mean(vals)
				}
			}
			f.Series = append(f.Series, Series{Name: algo, Y: ys})
		}
		return f
	}
	return []*Figure{
		mk("a", "query time (s)", func(a *pointAccumulator, algo string) []float64 { return a.times[algo] }),
		mk("b", "kept nodes (%)", func(a *pointAccumulator, algo string) []float64 { return a.percents[algo] }),
		mk("c", "edge density", func(a *pointAccumulator, algo string) []float64 { return a.densities[algo] }),
	}
}

// RunQuerySize reproduces Figures 5 (DBLP) / 6 (Facebook): vary |Q| over
// {1, 2, 4, 8, 16} with degree-rank and inter-distance at their defaults.
func RunQuerySize(nw *gen.Network, id string, cfg Config) []*Figure {
	s := SearcherFor(nw)
	g := nw.Graph()
	rng := gen.NewRNG(cfg.seed() ^ 0x51E)
	sizes := []int{1, 2, 4, 8, 16}
	xs := make([]string, len(sizes))
	accs := make([]*pointAccumulator, len(sizes))
	for i, size := range sizes {
		xs[i] = fmt.Sprintf("%d", size)
		acc := newPointAccumulator()
		accs[i] = acc
		done := 0
		for attempt := 0; attempt < cfg.queries()*10 && done < cfg.queries(); attempt++ {
			q, err := gen.QueryByDegreeRank(g, rng, 0, 5, size) // default: top bucket-ish (Qd high)
			if err != nil {
				break
			}
			if runOneQuery(s, q, cfg, acc) {
				done++
			}
		}
		cfg.progressf("%s |Q|=%d: %d queries\n", id, size, done)
	}
	return figuresFromAccumulators(id, nw.Name, "|Q|", xs, accs)
}

// RunDegreeRank reproduces Figures 7 (DBLP) / 8 (Facebook): vary the degree
// rank bucket of the 3-vertex query over the five 20% buckets.
func RunDegreeRank(nw *gen.Network, id string, cfg Config) []*Figure {
	s := SearcherFor(nw)
	g := nw.Graph()
	rng := gen.NewRNG(cfg.seed() ^ 0xDE6)
	xs := []string{"20", "40", "60", "80", "100"}
	accs := make([]*pointAccumulator, 5)
	for b := 0; b < 5; b++ {
		acc := newPointAccumulator()
		accs[b] = acc
		done := 0
		for attempt := 0; attempt < cfg.queries()*10 && done < cfg.queries(); attempt++ {
			q, err := gen.QueryByDegreeRank(g, rng, b, 5, 3)
			if err != nil {
				break
			}
			if runOneQuery(s, q, cfg, acc) {
				done++
			}
		}
		cfg.progressf("%s bucket=%d: %d queries\n", id, b, done)
	}
	return figuresFromAccumulators(id, nw.Name, "degree rank (%)", xs, accs)
}

// RunInterDistance reproduces Figures 9 (DBLP) / 10 (Facebook): vary the
// pairwise inter-distance l of the 3-vertex query from 1 to 5.
func RunInterDistance(nw *gen.Network, id string, cfg Config) []*Figure {
	s := SearcherFor(nw)
	g := nw.Graph()
	rng := gen.NewRNG(cfg.seed() ^ 0x1D1)
	ls := []int{1, 2, 3, 4, 5}
	xs := make([]string, len(ls))
	accs := make([]*pointAccumulator, len(ls))
	for i, l := range ls {
		xs[i] = fmt.Sprintf("%d", l)
		acc := newPointAccumulator()
		accs[i] = acc
		done := 0
		for attempt := 0; attempt < cfg.queries()*10 && done < cfg.queries(); attempt++ {
			q, err := gen.QueryByInterDistance(g, rng, l, 3, 60)
			if err != nil {
				continue
			}
			if runOneQuery(s, q, cfg, acc) {
				done++
			}
		}
		cfg.progressf("%s l=%d: %d queries\n", id, l, done)
	}
	return figuresFromAccumulators(id, nw.Name, "inter-distance l", xs, accs)
}
