package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// testNetwork builds a small planted-community network so the experiment
// smoke tests run in milliseconds instead of regenerating the full
// analogues.
func testNetwork(t *testing.T) *gen.Network {
	t.Helper()
	g, comms := gen.CommunityGraph(gen.CommunityParams{
		N: 400, NumCommunities: 25, MinSize: 8, MaxSize: 22,
		Overlap: 0.3, PIntra: 0.45, BackgroundEdges: 300,
		PlantedClique: 9, Seed: 0x7E57,
	})
	return gen.Custom("testnet", g, comms)
}

var smokeCfg = Config{QueriesPerPoint: 2, Seed: 9, BasicTimeout: 3 * time.Second, Quiet: true}

func checkFigure(t *testing.T, f *Figure) {
	t.Helper()
	if f.ID == "" || len(f.X) == 0 || len(f.Series) == 0 {
		t.Fatalf("malformed figure %+v", f)
	}
	for _, s := range f.Series {
		if len(s.Y) != len(f.X) {
			t.Fatalf("figure %s series %s: %d values for %d x ticks", f.ID, s.Name, len(s.Y), len(f.X))
		}
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), f.ID) {
		t.Fatalf("render missing figure ID:\n%s", buf.String())
	}
}

func TestRunQuerySizeSmoke(t *testing.T) {
	figs := RunQuerySize(testNetwork(t), "Fig5", smokeCfg)
	if len(figs) != 3 {
		t.Fatalf("%d figures, want 3 (time/percent/density)", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// The kept-percentage figure must stay within [0, 100] for finite
	// entries, and LCTC must prune at least as well as Truss keeps.
	for _, s := range figs[1].Series {
		for _, y := range s.Y {
			if !math.IsInf(y, 1) && (y < 0 || y > 100.000001) {
				t.Fatalf("kept %% out of range: %f", y)
			}
		}
	}
}

func TestRunDegreeRankSmoke(t *testing.T) {
	figs := RunDegreeRank(testNetwork(t), "Fig7", smokeCfg)
	if len(figs) != 3 {
		t.Fatalf("%d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		if len(f.X) != 5 {
			t.Fatalf("degree rank needs 5 buckets, got %d", len(f.X))
		}
	}
}

func TestRunInterDistanceSmoke(t *testing.T) {
	figs := RunInterDistance(testNetwork(t), "Fig9", smokeCfg)
	for _, f := range figs {
		checkFigure(t, f)
	}
}

func TestRunGroundTruthSmoke(t *testing.T) {
	nw := testNetwork(t)
	figs := RunGroundTruth(smokeCfg, []*gen.Network{nw})
	if len(figs) != 3 {
		t.Fatalf("%d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// F1 in [0,1].
	for _, s := range figs[0].Series {
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("F1 %f out of range", y)
			}
		}
	}
}

func TestRunDiamApproxSmoke(t *testing.T) {
	figs := RunDiamApprox(testNetwork(t), smokeCfg)
	if len(figs) != 2 {
		t.Fatalf("%d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// Lemma 2 shape: LB <= each algorithm diameter <= UB where defined.
	var lb, ub, basic []float64
	for _, s := range figs[0].Series {
		switch s.Name {
		case "LB-OPT":
			lb = s.Y
		case "UB-OPT":
			ub = s.Y
		case "Basic":
			basic = s.Y
		}
	}
	for i := range lb {
		if math.IsNaN(lb[i]) || math.IsNaN(basic[i]) {
			continue
		}
		if basic[i] < lb[i]-1e-9 || basic[i] > ub[i]+1e-9 {
			t.Fatalf("point %d: Basic diameter %f outside [%f, %f]", i, basic[i], lb[i], ub[i])
		}
	}
}

func TestRunVaryKSmoke(t *testing.T) {
	f := RunVaryK(testNetwork(t), smokeCfg)
	checkFigure(t, f)
	if f.X[len(f.X)-1] != "max" {
		t.Fatalf("last tick %q, want max", f.X[len(f.X)-1])
	}
}

func TestRunVaryEtaGammaSmoke(t *testing.T) {
	nw := testNetwork(t)
	for _, figs := range [][]*Figure{RunVaryEta(nw, smokeCfg), RunVaryGamma(nw, smokeCfg)} {
		if len(figs) != 3 {
			t.Fatalf("%d figures", len(figs))
		}
		for _, f := range figs {
			checkFigure(t, f)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	nw := testNetwork(t)
	checkFigure(t, RunAblationSteiner(nw, smokeCfg))
	checkFigure(t, RunAblationBulkRule(nw, smokeCfg))
}

func TestCaseStudySmoke(t *testing.T) {
	res, err := CaseStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: LCTC is much smaller and denser than G0, with
	// smaller diameter, same trussness.
	if res.LCTC.N() >= res.G0.N() {
		t.Fatalf("LCTC %d nodes >= G0 %d nodes", res.LCTC.N(), res.G0.N())
	}
	if res.LCTC.Density() <= res.G0.Density() {
		t.Fatalf("LCTC density %.3f <= G0 density %.3f", res.LCTC.Density(), res.G0.Density())
	}
	if res.LCTCDiameter > res.G0Diameter {
		t.Fatalf("LCTC diameter %d > G0 diameter %d", res.LCTCDiameter, res.G0Diameter)
	}
	// All four query authors present.
	for _, name := range res.QueryNames {
		found := false
		for _, m := range res.MemberNames {
			if m == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("query author %s missing from community", name)
		}
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if !strings.Contains(buf.String(), "LCTC") {
		t.Fatal("case study table missing LCTC row")
	}
}

func TestFormatCell(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1): "Inf",
		0.0001:      "1.00e-04",
		12345:       "12345",
		0:           "0",
	}
	for v, want := range cases {
		if got := formatCell(v); got != want {
			t.Fatalf("formatCell(%v) = %q, want %q", v, got, want)
		}
	}
	if formatCell(math.NaN()) != "-" {
		t.Fatal("NaN cell")
	}
}

func TestMeanWithInf(t *testing.T) {
	if meanWithInf(nil) != Inf {
		t.Fatal("empty mean should be Inf")
	}
	if meanWithInf([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if meanWithInf([]float64{1, Inf}) != Inf {
		t.Fatal("Inf must propagate")
	}
}

func TestIndexForCaches(t *testing.T) {
	nw := testNetwork(t)
	if IndexFor(nw) != IndexFor(nw) {
		t.Fatal("index not cached")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bb") {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestExtensionTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full decompositions on the facebook analogue")
	}
	tb := ExtensionTable(smokeCfg)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "incremental") {
		t.Fatalf("render:\n%s", buf.String())
	}
}
