package exp

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/truss"
)

// ExtensionTable benchmarks the dynamic truss maintenance (the [17]
// machinery, §8 "networks with interactions") against full recomputation:
// median time per edge update on the Facebook analogue.
func ExtensionTable(cfg Config) *Table {
	nw, err := gen.NetworkByName("facebook")
	if err != nil {
		return &Table{ID: "Ext", Title: err.Error()}
	}
	g := nw.Graph()
	edges := g.EdgeKeys()
	rng := gen.NewRNG(cfg.seed() ^ 0xE87)
	updates := 40
	cfg.progressf("Ext: %d updates on %s\n", updates, nw.Name)

	// Incremental: delete + reinsert random edges.
	dy := truss.NewDynamic(g)
	start := time.Now()
	for i := 0; i < updates; i++ {
		e := edges[rng.Intn(len(edges))]
		u, v := e.Endpoints()
		dy.DeleteEdge(u, v)
		dy.InsertEdge(u, v)
	}
	incPer := time.Since(start).Seconds() / float64(2*updates)

	// Full recomputation for the same workload shape (fewer rounds, scaled).
	mu := graph.NewMutable(g, nil)
	rebuilds := 4
	start = time.Now()
	for i := 0; i < rebuilds; i++ {
		e := edges[rng.Intn(len(edges))]
		u, v := e.Endpoints()
		mu.DeleteEdge(u, v)
		truss.DecomposeMutable(mu)
		mu.AddEdge(u, v)
		truss.DecomposeMutable(mu)
	}
	rebuildPer := time.Since(start).Seconds() / float64(2*rebuilds)

	speedup := 0.0
	if incPer > 0 {
		speedup = rebuildPer / incPer
	}
	return &Table{
		ID:     "Ext",
		Title:  "Dynamic truss maintenance vs full recomputation (facebook analogue)",
		Header: []string{"strategy", "sec / update", "speedup"},
		Rows: [][]string{
			{"incremental (Dynamic)", fmt.Sprintf("%.5f", incPer), fmt.Sprintf("%.1fx", speedup)},
			{"full recomputation", fmt.Sprintf("%.5f", rebuildPer), "1x"},
		},
	}
}
