package exp

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trussindex"
)

// CaseStudyResult reproduces Figure 11: the raw maximal k-truss G0 versus
// the LCTC community for the four database query authors on the synthetic
// collaboration network.
type CaseStudyResult struct {
	QueryNames   []string
	G0           *core.Community
	LCTC         *core.Community
	MemberNames  []string // LCTC community member names, sorted
	G0Diameter   int
	LCTCDiameter int
}

// CaseStudy runs the Figure 11 experiment.
func CaseStudy(seed uint64) (*CaseStudyResult, error) {
	cn := gen.Collaboration(seed)
	ix := trussindex.Build(cn.G)
	s := core.NewSearcher(ix)
	q := cn.QueryAuthors
	g0, err := s.TrussOnly(q, nil)
	if err != nil {
		return nil, fmt.Errorf("exp: case study G0: %w", err)
	}
	lctc, err := s.LCTC(q, nil)
	if err != nil {
		return nil, fmt.Errorf("exp: case study LCTC: %w", err)
	}
	res := &CaseStudyResult{
		G0:           g0,
		LCTC:         lctc,
		G0Diameter:   g0.Diameter(),
		LCTCDiameter: lctc.Diameter(),
	}
	for _, v := range q {
		res.QueryNames = append(res.QueryNames, cn.NameOf(v))
	}
	for _, v := range lctc.Vertices() {
		res.MemberNames = append(res.MemberNames, cn.NameOf(v))
	}
	sort.Strings(res.MemberNames)
	return res, nil
}

// Table renders the case study as a comparison table.
func (r *CaseStudyResult) Table() *Table {
	return &Table{
		ID:     "Fig11",
		Title:  "Case study: G0 vs LCTC for the four query authors",
		Header: []string{"", "nodes", "edges", "density", "diameter", "trussness"},
		Rows: [][]string{
			{"G0 (Truss)",
				fmt.Sprintf("%d", r.G0.N()), fmt.Sprintf("%d", r.G0.M()),
				fmt.Sprintf("%.2f", r.G0.Density()), fmt.Sprintf("%d", r.G0Diameter),
				fmt.Sprintf("%d", r.G0.K)},
			{"LCTC",
				fmt.Sprintf("%d", r.LCTC.N()), fmt.Sprintf("%d", r.LCTC.M()),
				fmt.Sprintf("%.2f", r.LCTC.Density()), fmt.Sprintf("%d", r.LCTCDiameter),
				fmt.Sprintf("%d", r.LCTC.K)},
		},
	}
}
