package exp

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{
		ID: "FigX", XLabel: "|Q|", X: []string{"1", "2"},
		Series: []Series{
			{Name: "A", Y: []float64{1.5, math.Inf(1)}},
			{Name: "B", Y: []float64{0.25, math.NaN()}},
		},
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "|Q|,A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,1.5,0.25" {
		t.Fatalf("row = %q", lines[1])
	}
	if lines[2] != "2,Inf," {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{ID: "T", Header: []string{"a", "b"}, Rows: [][]string{{"1", "x,y"}}}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"x,y"`) {
		t.Fatalf("comma not quoted: %q", buf.String())
	}
}

func TestSaveCSVFiles(t *testing.T) {
	dir := t.TempDir()
	figs := []*Figure{
		{ID: "F1", XLabel: "x", X: []string{"1"}, Series: []Series{{Name: "s", Y: []float64{2}}}},
		{ID: "F2", XLabel: "x", X: []string{"1"}, Series: []Series{{Name: "s", Y: []float64{3}}}},
	}
	if err := SaveFiguresCSV(dir, figs); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"F1", "F2"} {
		if _, err := os.Stat(filepath.Join(dir, id+".csv")); err != nil {
			t.Fatalf("missing %s.csv: %v", id, err)
		}
	}
	tab := &Table{ID: "T9", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	if err := SaveTableCSV(dir, tab); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "T9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a\n") {
		t.Fatalf("table csv = %q", data)
	}
}
