// Package exp regenerates every table and figure of the paper's evaluation
// (Section 6) on the synthetic network analogues: Exp-1's query-parameter
// sweeps (Figures 5-10), the index accounting of Table 3, the Figure 11
// case study, the ground-truth quality comparison of Figure 12, the
// approximation studies of Figures 13-14, and the LCTC parameter sweeps of
// Figures 15-16, plus ablations for the design decisions discussed in §7.1.
//
// Every driver returns renderable Figure/Table values; cmd/ctcbench and the
// root bench suite print them.
package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trussindex"
)

// Config tunes experiment scale. The zero value gives defaults sized so the
// full suite completes in minutes (the paper averaged over 100 queries per
// point on server hardware; we default to fewer).
type Config struct {
	// QueriesPerPoint is how many random queries each data point averages
	// over (default 8).
	QueriesPerPoint int
	// Seed drives query sampling.
	Seed uint64
	// BasicTimeout caps each Basic run; beyond it the point reports Inf,
	// mirroring the paper's 1-hour cutoff (default 2s).
	BasicTimeout time.Duration
	// Quiet suppresses progress output.
	Quiet bool
	// Progress, when non-nil, receives progress lines (defaults to none).
	Progress io.Writer
}

func (c Config) queries() int {
	if c.QueriesPerPoint <= 0 {
		return 8
	}
	return c.QueriesPerPoint
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 0x5EED
	}
	return c.Seed
}

func (c Config) basicTimeout() time.Duration {
	if c.BasicTimeout <= 0 {
		return 2 * time.Second
	}
	return c.BasicTimeout
}

func (c Config) progressf(format string, args ...interface{}) {
	if c.Quiet || c.Progress == nil {
		return
	}
	fmt.Fprintf(c.Progress, format, args...)
}

// Inf is the sentinel for timed-out measurements in figures.
var Inf = math.Inf(1)

// Series is one named line of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a paper figure: x tick labels and one or more series.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	X      []string
	YLabel string
	Series []Series
}

// Render prints the figure as an aligned text table, one row per x value.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, len(f.X))
	for i, x := range f.X {
		row := []string{x}
		for _, s := range f.Series {
			row = append(row, formatCell(s.Y[i]))
		}
		rows[i] = row
	}
	renderAligned(w, header, rows)
	fmt.Fprintf(w, "  (y: %s)\n\n", f.YLabel)
}

// Table is a paper table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render prints the table aligned.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	renderAligned(w, t.Header, t.Rows)
	fmt.Fprintln(w)
}

func renderAligned(w io.Writer, header []string, rows [][]string) {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, width[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(header)
	dashes := make([]string, len(header))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", width[i])
	}
	line(dashes)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func formatCell(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "Inf"
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// indexCache memoizes truss indexes per network (decomposing the larger
// analogues costs seconds and every experiment needs one).
var indexCache sync.Map // *gen.Network → *trussindex.Index

// IndexFor returns the cached truss index of a network.
func IndexFor(nw *gen.Network) *trussindex.Index {
	if v, ok := indexCache.Load(nw); ok {
		return v.(*trussindex.Index)
	}
	ix := trussindex.Build(nw.Graph())
	actual, _ := indexCache.LoadOrStore(nw, ix)
	return actual.(*trussindex.Index)
}

// SearcherFor returns a Searcher over the cached index of a network.
func SearcherFor(nw *gen.Network) *core.Searcher {
	return core.NewSearcher(IndexFor(nw))
}

// timed runs fn and returns its duration in seconds.
func timed(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}
