package exp

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/quality"
)

// gtNetworks are the five ground-truth networks of Exp-3 (all but Facebook).
func gtNetworks() []*gen.Network {
	var out []*gen.Network
	for _, nw := range gen.SharedNetworks() {
		if nw.HasGroundTruth {
			out = append(out, nw)
		}
	}
	return out
}

// gtMethods are the four community models compared in Figure 12.
var gtMethods = []string{"MDC", "QDC", "Truss", "LCTC"}

// RunGroundTruth reproduces Figure 12: F1 score, query time, and
// detected-community size (|V|, |E|) for MDC, QDC, Truss and LCTC over the
// five networks with ground truth, using queries sampled from ground-truth
// communities (sizes 1..16 mirroring the paper's 1,000 random query sets).
func RunGroundTruth(cfg Config, networks []*gen.Network) []*Figure {
	if networks == nil {
		networks = gtNetworks()
	}
	xs := make([]string, len(networks))
	f1 := map[string][]float64{}
	times := map[string][]float64{}
	sizeV := map[string][]float64{}
	sizeE := map[string][]float64{}
	for i, nw := range networks {
		xs[i] = nw.Name
		cfg.progressf("Fig12: %s\n", nw.Name)
		s := SearcherFor(nw)
		g := nw.Graph()
		rng := gen.NewRNG(cfg.seed() ^ uint64(i)<<8 ^ 0xF12)
		queries := gen.QueriesFromGroundTruth(rng, nw.GroundTruth(), cfg.queries(), 1, 16)
		acc := map[string]*struct {
			f1s, ts, vs, es []float64
		}{}
		for _, m := range gtMethods {
			acc[m] = &struct{ f1s, ts, vs, es []float64 }{}
		}
		for _, gq := range queries {
			// MDC baseline.
			runBaseline := func(name string, run func() (*baseline.Result, error)) {
				var r *baseline.Result
				secs, err := timed(func() error {
					var e error
					r, e = run()
					return e
				})
				if err != nil {
					return
				}
				a := acc[name]
				a.f1s = append(a.f1s, quality.F1(r.Vertices, gq.Community))
				a.ts = append(a.ts, secs)
				a.vs = append(a.vs, float64(r.N()))
				a.es = append(a.es, float64(r.M()))
			}
			// MDC runs under the Cocktail Party model's fixed distance and
			// size constraints — the rigidity the paper blames for its low
			// F1 ("MDC does not perform well due to the fixed distance and
			// size constraints").
			runBaseline("MDC", func() (*baseline.Result, error) {
				return baseline.MDC(g, gq.Q, &baseline.MDCOptions{DistBound: 2, SizeBound: 10})
			})
			runBaseline("QDC", func() (*baseline.Result, error) { return baseline.QDC(g, gq.Q, nil) })
			runCore := func(name string, run func([]int, *core.Options) (*core.Community, error)) {
				var c *core.Community
				secs, err := timed(func() error {
					var e error
					c, e = run(gq.Q, nil)
					return e
				})
				if err != nil {
					return
				}
				a := acc[name]
				a.f1s = append(a.f1s, quality.F1(c.Vertices(), gq.Community))
				a.ts = append(a.ts, secs)
				a.vs = append(a.vs, float64(c.N()))
				a.es = append(a.es, float64(c.M()))
			}
			runCore("Truss", s.TrussOnly)
			runCore("LCTC", s.LCTC)
		}
		for _, m := range gtMethods {
			f1[m] = append(f1[m], quality.Mean(acc[m].f1s))
			times[m] = append(times[m], quality.Mean(acc[m].ts))
			sizeV[m] = append(sizeV[m], quality.Mean(acc[m].vs))
			sizeE[m] = append(sizeE[m], quality.Mean(acc[m].es))
		}
	}
	mkFig := func(id, ylabel string, data map[string][]float64, methods []string) *Figure {
		f := &Figure{ID: id, Title: "Quality on networks with ground-truth communities",
			XLabel: "network", X: xs, YLabel: ylabel}
		for _, m := range methods {
			f.Series = append(f.Series, Series{Name: m, Y: data[m]})
		}
		return f
	}
	reduction := &Figure{ID: "Fig12c", Title: "Detected community size: Truss vs LCTC",
		XLabel: "network", X: xs, YLabel: "avg count"}
	for _, m := range []string{"Truss", "LCTC"} {
		reduction.Series = append(reduction.Series,
			Series{Name: "|V|-" + m, Y: sizeV[m]},
			Series{Name: "|E|-" + m, Y: sizeE[m]})
	}
	return []*Figure{
		mkFig("Fig12a", "F1 score", f1, gtMethods),
		mkFig("Fig12b", "query time (s)", times, gtMethods),
		reduction,
	}
}
