package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/quality"
)

// lctcParamSweep measures LCTC's community size, F1 score and query time
// over a sweep of one option dimension, using ground-truth queries
// (Figures 15 and 16 share this scaffolding).
func lctcParamSweep(nw *gen.Network, id, xlabel string, xs []string,
	mkOpt func(i int) *core.Options, cfg Config) []*Figure {
	s := SearcherFor(nw)
	rng := gen.NewRNG(cfg.seed() ^ 0x9A12)
	queries := gen.QueriesFromGroundTruth(rng, nw.GroundTruth(), cfg.queries(), 2, 8)
	sizes := make([]float64, len(xs))
	f1s := make([]float64, len(xs))
	times := make([]float64, len(xs))
	for i := range xs {
		opt := mkOpt(i)
		var vs, fs, ts []float64
		for _, gq := range queries {
			var c *core.Community
			secs, err := timed(func() error {
				var e error
				c, e = s.LCTC(gq.Q, opt)
				return e
			})
			if err != nil {
				continue
			}
			vs = append(vs, float64(c.N()))
			fs = append(fs, quality.F1(c.Vertices(), gq.Community))
			ts = append(ts, secs)
		}
		cfg.progressf("%s %s=%s: %d queries\n", id, xlabel, xs[i], len(vs))
		sizes[i] = quality.Mean(vs)
		f1s[i] = quality.Mean(fs)
		times[i] = quality.Mean(ts)
	}
	title := func(y string) string { return fmt.Sprintf("%s: LCTC %s vs %s", nw.Name, y, xlabel) }
	return []*Figure{
		{ID: id + "a", Title: title("|V|"), XLabel: xlabel, X: xs, YLabel: "community |V|",
			Series: []Series{{Name: "LCTC", Y: sizes}}},
		{ID: id + "b", Title: title("F1"), XLabel: xlabel, X: xs, YLabel: "F1 score",
			Series: []Series{{Name: "LCTC", Y: f1s}}},
		{ID: id + "c", Title: title("time"), XLabel: xlabel, X: xs, YLabel: "query time (s)",
			Series: []Series{{Name: "LCTC", Y: times}}},
	}
}

// RunVaryEta reproduces Figure 15 (DBLP): LCTC under η ∈ {100..2000}.
func RunVaryEta(nw *gen.Network, cfg Config) []*Figure {
	etas := []int{100, 500, 1000, 1500, 2000}
	xs := make([]string, len(etas))
	for i, e := range etas {
		xs[i] = fmt.Sprintf("%d", e)
	}
	return lctcParamSweep(nw, "Fig15", "eta", xs,
		func(i int) *core.Options { return &core.Options{Eta: etas[i]} }, cfg)
}

// RunVaryGamma reproduces Figure 16 (DBLP): LCTC under γ ∈ {1,3,5,7,9}.
func RunVaryGamma(nw *gen.Network, cfg Config) []*Figure {
	gammas := []float64{1, 3, 5, 7, 9}
	xs := make([]string, len(gammas))
	for i, g := range gammas {
		xs[i] = fmt.Sprintf("%g", g)
	}
	return lctcParamSweep(nw, "Fig16", "gamma", xs,
		func(i int) *core.Options { return &core.Options{Gamma: gammas[i]} }, cfg)
}
