package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/steiner"
)

// RunAblationSteiner quantifies the §5.2 design decision of seeding LCTC
// with a truss-distance Steiner tree instead of a hop-count one: it compares
// the trussness and diameter of LCTC communities under γ=3 (truss distance)
// versus γ=0 (plain hops), plus the min trussness of the seed trees
// themselves.
func RunAblationSteiner(nw *gen.Network, cfg Config) *Figure {
	s := SearcherFor(nw)
	ix := IndexFor(nw)
	g := nw.Graph()
	rng := gen.NewRNG(cfg.seed() ^ 0xAB1)
	var kTruss, kHop, treeTruss, treeHop []float64
	done := 0
	for attempt := 0; attempt < cfg.queries()*10 && done < cfg.queries(); attempt++ {
		q, err := gen.QueryByInterDistance(g, rng, 2, 3, 60)
		if err != nil {
			continue
		}
		cTruss, err1 := s.LCTC(q, &core.Options{Gamma: 3})
		cHop, err2 := s.LCTC(q, &core.Options{Gamma: -1}) // -1 selects hop distance
		t1, err3 := steiner.Build(ix, q, 3)
		t2, err4 := steiner.Build(ix, q, 0)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			continue
		}
		done++
		kTruss = append(kTruss, float64(cTruss.K))
		kHop = append(kHop, float64(cHop.K))
		treeTruss = append(treeTruss, float64(t1.MinTruss))
		treeHop = append(treeHop, float64(t2.MinTruss))
	}
	cfg.progressf("AblationSteiner: %d queries\n", done)
	return &Figure{
		ID:     "AblSteiner",
		Title:  nw.Name + ": truss-distance vs hop-distance Steiner seeding",
		XLabel: "metric", X: []string{"community k", "seed tree min truss"},
		YLabel: "avg trussness",
		Series: []Series{
			{Name: "truss-dist (γ=3)", Y: []float64{quality.Mean(kTruss), quality.Mean(treeTruss)}},
			{Name: "hop-dist (γ=0)", Y: []float64{quality.Mean(kHop), quality.Mean(treeHop)}},
		},
	}
}

// RunAblationBulkRule compares the deletion rules of §5: BD's aggressive
// L = {dist >= d-1} versus LCTC's exact L' = {dist >= d}, measured by the
// achieved diameter and the iteration speed proxy (query time).
func RunAblationBulkRule(nw *gen.Network, cfg Config) *Figure {
	s := SearcherFor(nw)
	g := nw.Graph()
	rng := gen.NewRNG(cfg.seed() ^ 0xAB2)
	var diamBD, diamBasic, timeBD, timeBasic []float64
	done := 0
	for attempt := 0; attempt < cfg.queries()*10 && done < cfg.queries(); attempt++ {
		q, err := gen.QueryByInterDistance(g, rng, 2, 3, 60)
		if err != nil {
			continue
		}
		var bd, basic *core.Community
		tBD, err1 := timed(func() error {
			var e error
			bd, e = s.BulkDelete(q, nil)
			return e
		})
		tBasic, err2 := timed(func() error {
			var e error
			basic, e = s.Basic(q, &core.Options{Timeout: cfg.basicTimeout()})
			return e
		})
		if err1 != nil || err2 != nil {
			continue
		}
		done++
		diamBD = append(diamBD, float64(bd.Diameter()))
		diamBasic = append(diamBasic, float64(basic.Diameter()))
		timeBD = append(timeBD, tBD)
		timeBasic = append(timeBasic, tBasic)
	}
	cfg.progressf("AblationBulkRule: %d queries\n", done)
	return &Figure{
		ID:     "AblBulk",
		Title:  fmt.Sprintf("%s: bulk rule L (dist>=d-1) vs single deletion", nw.Name),
		XLabel: "metric", X: []string{"avg diameter", "avg time (s)"},
		YLabel: "value",
		Series: []Series{
			{Name: "BD (bulk)", Y: []float64{quality.Mean(diamBD), quality.Mean(timeBD)}},
			{Name: "Basic (single)", Y: []float64{quality.Mean(diamBasic), quality.Mean(timeBasic)}},
		},
	}
}
