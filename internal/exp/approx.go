package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/quality"
)

// RunDiamApprox reproduces Figure 13 (Facebook): the average diameter and
// trussness of the communities found by Basic, BD and LCTC as the query
// inter-distance l varies, against the LB-OPT / UB-OPT diameter bounds
// derived from Basic's query distance (Lemma 2).
func RunDiamApprox(nw *gen.Network, cfg Config) []*Figure {
	s := SearcherFor(nw)
	g := nw.Graph()
	rng := gen.NewRNG(cfg.seed() ^ 0xD1A)
	ls := []int{1, 2, 3, 4, 5}
	xs := make([]string, len(ls))
	diam := map[string][]float64{}
	trussn := map[string][]float64{}
	algos := []string{"Basic", "BD", "LCTC"}
	for i, l := range ls {
		xs[i] = fmt.Sprintf("%d", l)
		perDiam := map[string][]float64{}
		perTruss := map[string][]float64{}
		var lbs, ubs []float64
		done := 0
		for attempt := 0; attempt < cfg.queries()*10 && done < cfg.queries(); attempt++ {
			q, err := gen.QueryByInterDistance(g, rng, l, 3, 60)
			if err != nil {
				continue
			}
			basic, err := s.Basic(q, &core.Options{Timeout: cfg.basicTimeout()})
			if err != nil {
				continue
			}
			bd, err := s.BulkDelete(q, nil)
			if err != nil {
				continue
			}
			lctc, err := s.LCTC(q, nil)
			if err != nil {
				continue
			}
			done++
			perDiam["Basic"] = append(perDiam["Basic"], float64(basic.Diameter()))
			perDiam["BD"] = append(perDiam["BD"], float64(bd.Diameter()))
			perDiam["LCTC"] = append(perDiam["LCTC"], float64(lctc.Diameter()))
			perTruss["Basic"] = append(perTruss["Basic"], float64(basic.K))
			perTruss["BD"] = append(perTruss["BD"], float64(bd.K))
			perTruss["LCTC"] = append(perTruss["LCTC"], float64(lctc.K))
			// LB-OPT: the smallest query distance achieved (Basic is
			// query-distance optimal by Lemma 5); UB-OPT = 2x (Lemma 2).
			lbs = append(lbs, float64(basic.QueryDist()))
			ubs = append(ubs, float64(2*basic.QueryDist()))
		}
		cfg.progressf("Fig13 l=%d: %d queries\n", l, done)
		for _, a := range algos {
			diam[a] = append(diam[a], quality.Mean(perDiam[a]))
			trussn[a] = append(trussn[a], quality.Mean(perTruss[a]))
		}
		diam["LB-OPT"] = append(diam["LB-OPT"], quality.Mean(lbs))
		diam["UB-OPT"] = append(diam["UB-OPT"], quality.Mean(ubs))
	}
	fd := &Figure{ID: "Fig13a", Title: nw.Name + ": community diameter vs inter-distance",
		XLabel: "l", X: xs, YLabel: "diameter"}
	for _, name := range []string{"Basic", "BD", "LCTC", "LB-OPT", "UB-OPT"} {
		fd.Series = append(fd.Series, Series{Name: name, Y: diam[name]})
	}
	ft := &Figure{ID: "Fig13b", Title: nw.Name + ": community trussness vs inter-distance",
		XLabel: "l", X: xs, YLabel: "trussness"}
	for _, name := range algos {
		ft.Series = append(ft.Series, Series{Name: name, Y: trussn[name]})
	}
	return []*Figure{fd, ft}
}

// RunVaryK reproduces Figure 14 (Facebook): the diameter of the LCTC
// community when the trussness is fixed at k ∈ {2,4,6,8,max} rather than
// maximized, against the LB-OPT bound at each k.
func RunVaryK(nw *gen.Network, cfg Config) *Figure {
	s := SearcherFor(nw)
	g := nw.Graph()
	rng := gen.NewRNG(cfg.seed() ^ 0x14)
	ks := []int32{2, 4, 6, 8, 0} // 0 = max
	xs := []string{"2", "4", "6", "8", "max"}
	// One fixed query batch reused across every k, per the paper's setup.
	var queries [][]int
	for attempt := 0; attempt < cfg.queries()*10 && len(queries) < cfg.queries(); attempt++ {
		q, err := gen.QueryByInterDistance(g, rng, 2, 3, 60)
		if err != nil {
			continue
		}
		if _, err := s.LCTC(q, nil); err != nil {
			continue
		}
		queries = append(queries, q)
	}
	var lctcD, lbD []float64
	for _, k := range ks {
		var ds, lbs []float64
		for _, q := range queries {
			c, err := s.LCTC(q, &core.Options{FixedK: k})
			if err != nil {
				continue
			}
			ds = append(ds, float64(c.Diameter()))
			lbs = append(lbs, float64(c.QueryDist()))
		}
		cfg.progressf("Fig14 k=%d: %d queries\n", k, len(ds))
		lctcD = append(lctcD, quality.Mean(ds))
		lbD = append(lbD, quality.Mean(lbs))
	}
	return &Figure{
		ID: "Fig14", Title: nw.Name + ": diameter vs fixed maximum trussness k",
		XLabel: "k", X: xs, YLabel: "diameter",
		Series: []Series{{Name: "LCTC", Y: lctcD}, {Name: "LB-OPT", Y: lbD}},
	}
}
