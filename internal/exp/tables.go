package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/gen"
	"repro/internal/trussindex"
)

// Table2 reproduces the paper's Table 2: per-network |V|, |E|, dmax and
// τ̄(∅) for the six analogues.
func Table2(cfg Config) *Table {
	t := &Table{
		ID:     "Table2",
		Title:  "Network statistics (synthetic analogues; see DESIGN.md §3)",
		Header: []string{"Network", "|V|", "|E|", "dmax", "tau(∅)", "ground truth"},
	}
	for _, nw := range gen.SharedNetworks() {
		cfg.progressf("Table2: %s\n", nw.Name)
		g := nw.Graph()
		ix := IndexFor(nw)
		gt := "no"
		if nw.HasGroundTruth {
			gt = fmt.Sprintf("%d comms", len(nw.GroundTruth()))
		}
		t.Rows = append(t.Rows, []string{
			nw.Name,
			fmt.Sprintf("%d", g.N()),
			fmt.Sprintf("%d", g.M()),
			fmt.Sprintf("%d", g.MaxDegree()),
			fmt.Sprintf("%d", ix.MaxTruss()),
			gt,
		})
	}
	return t
}

// Table3 reproduces the paper's Table 3: graph size, truss-index size and
// index construction time per network. Sizes are serialized bytes (the
// paper reports the index at ~1.6x the graph).
func Table3(cfg Config) *Table {
	t := &Table{
		ID:     "Table3",
		Title:  "Index size and index construction time",
		Header: []string{"Network", "Graph Size (MB)", "Index Size (MB)", "Index Time (s)"},
	}
	for _, nw := range gen.SharedNetworks() {
		cfg.progressf("Table3: %s\n", nw.Name)
		g := nw.Graph()
		start := time.Now()
		ix := trussindex.Build(g) // rebuild so the time is honest
		buildSecs := time.Since(start).Seconds()
		idxBytes := serializedSize(ix)
		t.Rows = append(t.Rows, []string{
			nw.Name,
			fmt.Sprintf("%.2f", float64(g.ApproxBytes())/1e6),
			fmt.Sprintf("%.2f", float64(idxBytes)/1e6),
			fmt.Sprintf("%.2f", buildSecs),
		})
	}
	return t
}

func serializedSize(ix *trussindex.Index) int64 {
	n, err := ix.WriteTo(io.Discard)
	if err != nil {
		return ix.ApproxBytes()
	}
	return n
}
