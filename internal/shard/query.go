package shard

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// gatherPollStride bounds how many vertex expansions the gather BFS does
// between context polls, mirroring the peel-round/BFS-level cancellation
// granularity of the core search pipeline.
const gatherPollStride = 4096

// Query answers one community-search request against the sharded tier.
//
// N == 1 delegates straight to the single manager — same admission gate,
// cache, and snapshot path as unsharded serving, byte-identical answers —
// and only stamps the one-entry epoch vector on the way out.
//
// N > 1 runs the scatter-gather merge pipeline:
//
//  1. Acquire one RCU snapshot per shard. The per-shard epoch vector of
//     the answer is exactly these epochs, stamped into
//     QueryStats.ShardEpochs (Epoch is their maximum). Skew between
//     entries is the staleness the merge tolerated: shards publish
//     independently, so an edge acknowledged on one home may not be
//     visible on the other until both have published past it; after
//     Flush the vector is consistent and the answer exact.
//  2. Validate the request against the tier-wide vertex space (the max
//     over shard snapshots). A query vertex no shard has ever seen fails
//     with core.ErrVertexOutOfRange, exactly like the single-shard plane.
//  3. Scatter: fan the request to the shards owning the query vertices
//     and run the full local search on each acquired snapshot. Partial
//     communities seed the gather frontier; a shard that finds nothing
//     locally (its subgraph may cut the community) contributes nothing
//     and is not an error.
//  4. Gather: multi-round BFS over the snapshots reconstructs the exact
//     connected component of the query. Every vertex's full adjacency
//     lives at its home shard (the cut-edge replication invariant), so
//     expanding each frontier vertex at its home — reading every shard
//     that lists it, to tolerate replication skew — yields every edge of
//     the component.
//  5. Merge: re-decompose the gathered union and run the search on it.
//     Trussness, and every one of the eight algorithms, is a function of
//     the connected component containing the query alone, so recomputing
//     on the exact component equals the single-shard answer (the LCTC
//     distance penalty's MaxTruss term shifts uniformly under component
//     restriction, which preserves every argmin; edge probabilities are
//     a pure function of endpoints).
func (r *Router) Query(ctx context.Context, req core.Request) (*core.Result, error) {
	if len(r.mgrs) == 1 {
		res, err := r.mgrs[0].Query(ctx, req)
		if res != nil {
			res.Stats.ShardEpochs = []int64{res.Stats.Epoch}
		}
		return res, err
	}
	start := time.Now()
	res, err := r.scatterGather(ctx, req, start)
	r.observeQuery(req, res, err, time.Since(start))
	return res, err
}

func (r *Router) scatterGather(ctx context.Context, req core.Request, start time.Time) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snaps := make([]*serve.Snapshot, len(r.mgrs))
	for i, m := range r.mgrs {
		snaps[i] = m.Acquire()
	}
	defer func() {
		for _, s := range snaps {
			s.Release()
		}
	}()
	epochs := make([]int64, len(snaps))
	var maxEpoch int64
	routerN := 0
	for i, s := range snaps {
		epochs[i] = s.Epoch()
		if epochs[i] > maxEpoch {
			maxEpoch = epochs[i]
		}
		if n := s.Graph().N(); n > routerN {
			routerN = n
		}
	}
	if err := req.Validate(routerN); err != nil {
		return nil, err
	}

	scatterStart := time.Now()
	seeds, found := r.scatter(ctx, req, snaps)
	scatterDur := time.Since(scatterStart)

	gatherStart := time.Now()
	union, comp, err := r.gather(ctx, req.Q, seeds, snaps, routerN)
	gatherDur := time.Since(gatherStart)
	if err != nil {
		return nil, err
	}

	mergeStart := time.Now()
	d, err := truss.DecomposeCancelable(union, ctx.Err)
	if err != nil {
		return nil, err
	}
	ix := trussindex.BuildFromDecomposition(union, d)
	res, err := core.NewSearcher(ix).Search(ctx, req)
	mergeDur := time.Since(mergeStart)

	r.observePhases(scatterDur, gatherDur, mergeDur, comp, union.M(), found)
	if err != nil {
		return nil, err
	}
	res.Stats.Epoch = maxEpoch
	res.Stats.ShardEpochs = epochs
	// Total covers the whole router pipeline — scatter and gather included —
	// so TotalWithQueue stays the client-observed latency. The phase fields
	// (Seed/Expand/Peel) describe the merge-phase search; the invariant
	// Total >= Seed+Expand+Peel only widens.
	res.Stats.Total = time.Since(start)
	return res, nil
}

// scatter runs the request on each involved shard's acquired snapshot (the
// shards owning the query vertices) and returns the union of the partial
// communities' vertex sets as extra gather seeds, plus how many shards
// found a local community. Partial failures (a shard whose subgraph cuts
// the community below k, an out-of-range vertex for that shard) are
// expected and simply contribute no seeds.
func (r *Router) scatter(ctx context.Context, req core.Request, snaps []*serve.Snapshot) (seeds []int, found int) {
	involved := involvedShards(r.part, req.Q)
	if len(involved) == 1 {
		seeds, ok := scatterOne(ctx, req, snaps[involved[0]])
		if ok {
			found = 1
		}
		return seeds, found
	}
	type partial struct {
		verts []int
		ok    bool
	}
	parts := make([]partial, len(involved))
	done := make(chan int, len(involved))
	for i, s := range involved {
		go func(i, s int) {
			parts[i].verts, parts[i].ok = scatterOne(ctx, req, snaps[s])
			done <- i
		}(i, s)
	}
	for range involved {
		<-done
	}
	for _, p := range parts {
		seeds = append(seeds, p.verts...)
		if p.ok {
			found++
		}
	}
	return seeds, found
}

func scatterOne(ctx context.Context, req core.Request, snap *serve.Snapshot) ([]int, bool) {
	local := req
	local.Verify = false // partials feed the merge; only the merged answer is verified
	res, err := snap.Query(ctx, local)
	if err != nil || res == nil {
		return nil, false
	}
	return res.Vertices(), true
}

// involvedShards returns the deduplicated home shards of the query
// vertices, in first-appearance order.
func involvedShards(p *Partitioner, q []int) []int {
	var out []int
	for _, v := range q {
		h := p.Home(v)
		dup := false
		for _, s := range out {
			if s == h {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, h)
		}
	}
	return out
}
