package shard

import (
	"context"

	"repro/internal/graph"
	"repro/internal/serve"
)

// gather reconstructs the exact connected component(s) of the query
// vertices across the shard snapshots and returns them as one union graph
// over the tier-wide vertex space [0, routerN).
//
// It is a multi-round BFS: every frontier vertex is expanded at each shard
// whose snapshot knows it. The home shard holds the vertex's complete
// adjacency (the replication invariant), so one round per BFS level
// suffices for exactness; reading the non-home replicas too costs one
// redundant scan but tolerates replication skew — an edge already
// published by one home and not yet by the other is still found. Every
// incident edge is added to the builder (which dedupes), so the union is
// exactly the component's edge set as the acquired epoch vector sees it.
//
// seeds are extra known-component vertices (the scatter partials) folded
// into the initial frontier; they never change the result — a partial
// community is connected to the query by construction — but let the BFS
// start from the whole partial instead of rediscovering it.
func (r *Router) gather(ctx context.Context, q, seeds []int, snaps []*serve.Snapshot, routerN int) (*graph.Graph, int, error) {
	b := graph.NewBuilder(routerN, 0)
	if routerN > 0 {
		b.EnsureVertex(routerN - 1)
	}
	visited := make([]bool, routerN)
	frontier := make([]int, 0, len(q)+len(seeds))
	push := func(v int) {
		if v >= 0 && v < routerN && !visited[v] {
			visited[v] = true
			frontier = append(frontier, v)
		}
	}
	for _, v := range q {
		push(v)
	}
	for _, v := range seeds {
		push(v)
	}

	comp := len(frontier)
	var next []int
	sincePoll := 0
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			if sincePoll++; sincePoll >= gatherPollStride {
				sincePoll = 0
				if err := ctx.Err(); err != nil {
					return nil, comp, err
				}
			}
			for _, s := range snaps {
				g := s.Graph()
				if v >= g.N() {
					continue
				}
				for _, w32 := range g.Neighbors(v) {
					w := int(w32)
					b.AddEdge(v, w)
					if w < routerN && !visited[w] {
						visited[w] = true
						next = append(next, w)
					}
				}
			}
		}
		comp += len(next)
		frontier, next = next, frontier
	}
	return b.Build(), comp, nil
}
