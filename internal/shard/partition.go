// Package shard is the sharded serving tier: it splits one graph's edge
// set across N per-shard serve.Managers (each with its own single-writer
// update loop, WAL directory, admission gate, and RCU epoch-snapshot
// index) and puts a scatter-gather router in front that speaks the same
// Search(ctx, Request) → Result plane as a single manager.
//
// Partitioning rule (vertex-home vertex-cut): every vertex v has one
// deterministic home shard, Home(v). An edge (u,v) is materialized at
// Home(u) and at Home(v) — once when they coincide, twice (a replicated
// "cut" edge) when they differ; its owner for accounting is Home(min(u,v)).
// The invariant this buys: a shard holds the complete adjacency of each of
// its home vertices, so any vertex can be fully expanded by consulting
// exactly one shard, and triangles whose two smaller-ID endpoints share a
// home close locally. Triangles spanning three homes do not close on any
// single shard — global trussness is restored by the router, which gathers
// the exact connected component of the query and recomputes on the union
// (see query.go).
//
// Assignment is hash-based by default (splitmix64 over vertex ID and
// seed), or community-aware: ground-truth communities from internal/gen
// map whole communities onto shards round-robin, which keeps most edges
// internal and most query components single-shard; unlabeled vertices fall
// back to the hash.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Partitioner deterministically assigns vertices to shard homes. It is
// immutable after construction and safe for concurrent use; the same
// (shards, seed, communities) always yields the same assignment, for any
// vertex ID — including IDs beyond the base graph, so foreign edges
// streamed later route identically on every run.
type Partitioner struct {
	shards int
	seed   uint64
	// homes overrides the hash for community-assigned vertices; -1 (and any
	// vertex past the table) falls back to the hash. Nil in hash mode.
	homes []int32
}

// NewPartitioner builds a hash partitioner over the given shard count.
func NewPartitioner(shards int, seed uint64) (*Partitioner, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1, got %d", shards)
	}
	return &Partitioner{shards: shards, seed: seed}, nil
}

// NewCommunityPartitioner builds a community-aware partitioner: community
// i lands on shard i mod shards (whole communities stay together, shards
// stay balanced when communities are similar in size), a vertex in several
// communities goes with the first one that claims it, and vertices in no
// community use the hash assignment.
func NewCommunityPartitioner(shards int, seed uint64, communities [][]int) (*Partitioner, error) {
	p, err := NewPartitioner(shards, seed)
	if err != nil {
		return nil, err
	}
	maxV := -1
	for _, c := range communities {
		for _, v := range c {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV < 0 {
		return p, nil // no labels: pure hash
	}
	homes := make([]int32, maxV+1)
	for i := range homes {
		homes[i] = -1
	}
	for ci, c := range communities {
		s := int32(ci % shards)
		for _, v := range c {
			if v >= 0 && homes[v] < 0 {
				homes[v] = s
			}
		}
	}
	p.homes = homes
	return p, nil
}

// Shards returns the shard count N.
func (p *Partitioner) Shards() int { return p.shards }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Home returns the shard that owns vertex v's adjacency. Defined for every
// int (negative and oversized IDs hash like any other, so malformed
// updates route somewhere deterministic and get rejected by that shard's
// manager exactly as a single manager would reject them).
func (p *Partitioner) Home(v int) int {
	if p.shards == 1 {
		return 0
	}
	if p.homes != nil && v >= 0 && v < len(p.homes) && p.homes[v] >= 0 {
		return int(p.homes[v])
	}
	return int(splitmix64(uint64(int64(v))^p.seed) % uint64(p.shards))
}

// Owner returns the single accounting owner of edge (u,v): the home of the
// smaller endpoint.
func (p *Partitioner) Owner(u, v int) int {
	if u > v {
		u, v = v, u
	}
	return p.Home(u)
}

// IsCut reports whether edge (u,v) spans two homes and is therefore
// replicated to both.
func (p *Partitioner) IsCut(u, v int) bool { return p.Home(u) != p.Home(v) }

// Placement is the deterministic partitioning of one graph's edge set:
// the edge→shard owner map (indexed by edge ID) and, per shard, the sorted
// replicated cut edges that shard holds without owning.
type Placement struct {
	// Owner[e] is the owning shard of edge ID e (the home of its smaller
	// endpoint).
	Owner []int32
	// Cut[s] lists the edges replicated to shard s that s does not own,
	// sorted in canonical EdgeKey order.
	Cut [][]graph.EdgeKey
}

// Place computes the placement of g's edges under p.
func (p *Partitioner) Place(g *graph.Graph) *Placement {
	pl := &Placement{
		Owner: make([]int32, g.M()),
		Cut:   make([][]graph.EdgeKey, p.shards),
	}
	keys := g.EdgeKeys()
	for e, k := range keys {
		u, v := k.Endpoints()
		hu, hv := p.Home(u), p.Home(v)
		own := hu
		if v < u {
			own = hv
		}
		pl.Owner[e] = int32(own)
		if hu != hv {
			other := hu + hv - own
			pl.Cut[other] = append(pl.Cut[other], k)
		}
	}
	for s := range pl.Cut {
		sort.Slice(pl.Cut[s], func(i, j int) bool {
			return pl.Cut[s][i] < pl.Cut[s][j]
		})
	}
	return pl
}

// Subgraph builds shard s's local graph: every edge incident to one of its
// home vertices (owned + replicated cut edges), over the full vertex ID
// space [0, g.N()) — vertex IDs are global, so request validation and
// community labels agree across shards and with the unsharded oracle.
func (p *Partitioner) Subgraph(g *graph.Graph, s int) *graph.Graph {
	n := g.N()
	b := graph.NewBuilder(n, 0)
	if n > 0 {
		b.EnsureVertex(n - 1)
	}
	g.ForEachEdge(func(u, v int) {
		if p.Home(u) == s || p.Home(v) == s {
			b.AddEdge(u, v)
		}
	})
	return b.Build()
}

// Subgraphs builds all N shard subgraphs of g.
func (p *Partitioner) Subgraphs(g *graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, p.shards)
	for s := range out {
		out[s] = p.Subgraph(g, s)
	}
	return out
}
