package shard

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func testGraph() (*graph.Graph, [][]int) {
	return gen.CommunityGraph(gen.CommunityParams{
		N: 300, NumCommunities: 12, MinSize: 8, MaxSize: 30,
		PIntra: 0.45, BackgroundEdges: 150, Seed: 7,
	})
}

var shardCounts = []int{1, 2, 4, 8}

// Satellite: same edge stream + seed ⇒ identical shard assignment and
// cut-edge sets, across N ∈ {1,2,4,8}.
func TestPartitionerDeterminism(t *testing.T) {
	g, comms := testGraph()
	for _, n := range shardCounts {
		for _, mode := range []string{"hash", "community"} {
			build := func() *Partitioner {
				if mode == "community" {
					p, err := NewCommunityPartitioner(n, 42, comms)
					if err != nil {
						t.Fatal(err)
					}
					return p
				}
				p, err := NewPartitioner(n, 42)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			p1, p2 := build(), build()
			for v := -3; v < g.N()+50; v++ {
				if p1.Home(v) != p2.Home(v) {
					t.Fatalf("N=%d %s: Home(%d) differs across constructions", n, mode, v)
				}
			}
			pl1, pl2 := p1.Place(g), p2.Place(g)
			if !reflect.DeepEqual(pl1, pl2) {
				t.Fatalf("N=%d %s: placement differs across constructions", n, mode)
			}
			for s := 0; s < n; s++ {
				g1, g2 := p1.Subgraph(g, s), p2.Subgraph(g, s)
				if !reflect.DeepEqual(g1.EdgeKeys(), g2.EdgeKeys()) || g1.N() != g2.N() {
					t.Fatalf("N=%d %s shard %d: subgraph differs across constructions", n, mode, s)
				}
			}
		}
	}
	// A different seed must actually move vertices (hash mode, N >= 2).
	pa, _ := NewPartitioner(4, 1)
	pb, _ := NewPartitioner(4, 2)
	moved := 0
	for v := 0; v < g.N(); v++ {
		if pa.Home(v) != pb.Home(v) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no vertex")
	}
}

// Satellite: N=1 must be byte-identical to unsharded serving — one shard
// owns everything, holds exactly the input edge list, and has no cut edges.
func TestPartitionerSingleShardIdentity(t *testing.T) {
	g, _ := testGraph()
	p, err := NewPartitioner(1, 99)
	if err != nil {
		t.Fatal(err)
	}
	sub := p.Subgraph(g, 0)
	if sub.N() != g.N() {
		t.Fatalf("N=1 subgraph has %d vertices, want %d", sub.N(), g.N())
	}
	if !reflect.DeepEqual(sub.EdgeKeys(), g.EdgeKeys()) {
		t.Fatal("N=1 subgraph edge list differs from the input graph")
	}
	pl := p.Place(g)
	for e, own := range pl.Owner {
		if own != 0 {
			t.Fatalf("N=1: edge %d owned by shard %d", e, own)
		}
	}
	if len(pl.Cut[0]) != 0 {
		t.Fatalf("N=1: %d cut edges, want 0", len(pl.Cut[0]))
	}
}

// checkPlacement asserts the structural invariants of one placement:
//   - every edge's owner is the home of its smaller endpoint;
//   - a shard's subgraph is exactly the edges incident to its home vertices;
//   - the subgraphs' union is the input edge set;
//   - cut edges are materialized at exactly their two endpoint homes, and
//     Placement.Cut lists precisely the replicas (held but not owned).
func checkPlacement(t *testing.T, g *graph.Graph, p *Partitioner) {
	t.Helper()
	n := p.Shards()
	pl := p.Place(g)
	keys := g.EdgeKeys()
	union := make(map[graph.EdgeKey]int)
	cutWant := make([][]graph.EdgeKey, n)
	for e, k := range keys {
		u, v := k.Endpoints()
		lo := u
		if v < lo {
			lo = v
		}
		if int(pl.Owner[e]) != p.Home(lo) {
			t.Fatalf("edge %v: owner %d, want home(min)=%d", k, pl.Owner[e], p.Home(lo))
		}
		if p.IsCut(u, v) {
			other := p.Home(u) + p.Home(v) - int(pl.Owner[e])
			cutWant[other] = append(cutWant[other], k)
		}
	}
	for s := 0; s < n; s++ {
		sub := p.Subgraph(g, s)
		if sub.N() != g.N() {
			t.Fatalf("shard %d: vertex space %d, want %d", s, sub.N(), g.N())
		}
		for _, k := range sub.EdgeKeys() {
			u, v := k.Endpoints()
			if p.Home(u) != s && p.Home(v) != s {
				t.Fatalf("shard %d holds foreign edge %v", s, k)
			}
			if g.EdgeID(u, v) < 0 {
				t.Fatalf("shard %d invented edge %v", s, k)
			}
			union[k]++
		}
		// Completeness: every edge incident to a home vertex is present.
		g.ForEachEdge(func(u, v int) {
			if (p.Home(u) == s || p.Home(v) == s) && !sub.HasEdge(u, v) {
				t.Fatalf("shard %d missing incident edge (%d,%d)", s, u, v)
			}
		})
	}
	for e, k := range keys {
		u, v := k.Endpoints()
		want := 1
		if p.IsCut(u, v) {
			want = 2
		}
		if union[k] != want {
			t.Fatalf("edge %v materialized %d times, want %d", keys[e], union[k], want)
		}
	}
	for s := 0; s < n; s++ {
		if len(pl.Cut[s]) != len(cutWant[s]) {
			t.Fatalf("shard %d: %d cut replicas, want %d", s, len(pl.Cut[s]), len(cutWant[s]))
		}
		seen := make(map[graph.EdgeKey]bool, len(pl.Cut[s]))
		for _, k := range pl.Cut[s] {
			seen[k] = true
		}
		for _, k := range cutWant[s] {
			if !seen[k] {
				t.Fatalf("shard %d cut list missing %v", s, k)
			}
		}
	}
}

func TestPlacementInvariants(t *testing.T) {
	g, comms := testGraph()
	for _, n := range shardCounts {
		p, err := NewPartitioner(n, 13)
		if err != nil {
			t.Fatal(err)
		}
		checkPlacement(t, g, p)
		cp, err := NewCommunityPartitioner(n, 13, comms)
		if err != nil {
			t.Fatal(err)
		}
		checkPlacement(t, g, cp)
	}
}

func TestCommunityPartitionerAssignment(t *testing.T) {
	comms := [][]int{{0, 1, 2}, {3, 4, 2}, {5}}
	p, err := NewCommunityPartitioner(2, 0, comms)
	if err != nil {
		t.Fatal(err)
	}
	// Community 0 → shard 0, community 1 → shard 1, community 2 → shard 0.
	for _, v := range []int{0, 1, 2} { // vertex 2 is claimed by community 0 first
		if got := p.Home(v); got != 0 {
			t.Fatalf("Home(%d) = %d, want 0", v, got)
		}
	}
	for _, v := range []int{3, 4} {
		if got := p.Home(v); got != 1 {
			t.Fatalf("Home(%d) = %d, want 1", v, got)
		}
	}
	if got := p.Home(5); got != 0 {
		t.Fatalf("Home(5) = %d, want 0 (community 2 mod 2)", got)
	}
	// Unlabeled vertices fall back to the hash assignment.
	h, _ := NewPartitioner(2, 0)
	for v := 6; v < 40; v++ {
		if p.Home(v) != h.Home(v) {
			t.Fatalf("unlabeled Home(%d): community %d != hash %d", v, p.Home(v), h.Home(v))
		}
	}
}

func TestNewPartitionerRejectsBadCounts(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewPartitioner(n, 0); err == nil {
			t.Fatalf("NewPartitioner(%d) accepted", n)
		}
	}
}

// FuzzPartitioner drives the placement invariants over arbitrary edge
// streams, seeds and shard counts.
func FuzzPartitioner(f *testing.F) {
	f.Add(uint64(1), uint8(2), []byte{1, 2, 2, 3, 3, 1, 0, 4})
	f.Add(uint64(7), uint8(8), []byte{9, 9, 1, 0, 255, 3})
	f.Fuzz(func(t *testing.T, seed uint64, nShards uint8, raw []byte) {
		n := int(nShards)%8 + 1
		b := graph.NewBuilder(0, 0)
		b.EnsureVertex(0)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i]), int(raw[i+1])
			if u == v {
				continue
			}
			b.EnsureVertex(u)
			b.EnsureVertex(v)
			b.AddEdge(u, v)
		}
		g := b.Build()
		p, err := NewPartitioner(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		checkPlacement(t, g, p)
	})
}
