package shard

import (
	"context"
	"errors"
	"strconv"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/directed"
	"repro/internal/prob"
	"repro/internal/serve"
	"repro/internal/steiner"
	"repro/internal/telemetry"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// routerMetrics holds the router's recording handles. All nil when
// Config.Metrics is unset; every recording site is nil-safe.
type routerMetrics struct {
	phase       *telemetry.HistogramVec
	scatter     *telemetry.Histogram
	gather      *telemetry.Histogram
	merge       *telemetry.Histogram
	queries     *telemetry.CounterVec
	partialHits *telemetry.Counter
	gatherVerts *telemetry.Gauge
	gatherEdges *telemetry.Gauge
}

// registerMetrics registers the router families: the merge-pipeline phase
// histogram, merged-query outcome counters, and one scrape-time gauge
// family per per-shard signal, labeled {shard="i"}. The per-shard families
// replace the single manager's ctc_epoch/ctc_graph_*/ctc_degraded view —
// shard managers are constructed with Metrics nil (one registry serves one
// metrics owner), so there is no double accounting.
func (r *Router) registerMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.NewGaugeFunc("ctc_shards",
		"Shard count of the serving tier.",
		func() float64 { return float64(len(r.mgrs)) })

	shardGauge := func(name, help string, read func(m *serve.Manager) float64) {
		gv := reg.NewGaugeVecFunc(name, help, "shard")
		for i, m := range r.mgrs {
			m := m
			gv.With(shardLabel(i), func() float64 { return read(m) })
		}
	}
	shardGauge("ctc_shard_epoch",
		"Epoch of the shard's currently served snapshot.",
		func(m *serve.Manager) float64 { return float64(m.Stats().Epoch) })
	shardGauge("ctc_shard_graph_vertices",
		"Vertices in the shard's served snapshot.",
		func(m *serve.Manager) float64 { return float64(m.Stats().Vertices) })
	shardGauge("ctc_shard_graph_edges",
		"Edges in the shard's served snapshot (owned + replicated cut edges).",
		func(m *serve.Manager) float64 { return float64(m.Stats().Edges) })
	shardGauge("ctc_shard_update_queue_depth",
		"Updates waiting in the shard writer's queue.",
		func(m *serve.Manager) float64 { return float64(m.Stats().QueueLen) })
	shardGauge("ctc_shard_dirty_updates",
		"Updates the shard has applied since its last publish.",
		func(m *serve.Manager) float64 { return float64(m.Stats().Dirty) })
	shardGauge("ctc_shard_degraded",
		"1 while the shard is read-only after a WAL failure, else 0.",
		func(m *serve.Manager) float64 {
			if m.Degraded() {
				return 1
			}
			return 0
		})
	shardGauge("ctc_shard_overloaded",
		"1 while the shard's admission gate is saturated, else 0.",
		func(m *serve.Manager) float64 {
			if m.Overloaded() {
				return 1
			}
			return 0
		})

	r.metrics.phase = reg.NewHistogramVec("ctc_router_phase_duration_seconds",
		"Wall time of one router merge-pipeline phase.", "phase", nil)
	r.metrics.scatter = r.metrics.phase.With("scatter")
	r.metrics.gather = r.metrics.phase.With("gather")
	r.metrics.merge = r.metrics.phase.With("merge")
	r.metrics.queries = reg.NewCounterVec("ctc_router_queries_total",
		"Merged (scatter-gather) router queries, by outcome.", "outcome")
	r.metrics.partialHits = reg.NewCounter("ctc_router_partial_hits_total",
		"Scatter partials that found a local community on some shard.")
	r.metrics.gatherVerts = reg.NewGauge("ctc_router_gather_vertices",
		"Component vertices reconstructed by the last gather.")
	r.metrics.gatherEdges = reg.NewGauge("ctc_router_gather_edges",
		"Union-graph edges reconstructed by the last gather.")
}

func shardLabel(i int) string { return strconv.Itoa(i) }

// observePhases records one merge pipeline's phase timings and gather
// sizes, and logs it at Debug.
func (r *Router) observePhases(scatter, gather, merge time.Duration, compVerts, unionEdges, partialsFound int) {
	r.metrics.scatter.Observe(scatter)
	r.metrics.gather.Observe(gather)
	r.metrics.merge.Observe(merge)
	r.metrics.partialHits.Add(int64(partialsFound))
	r.metrics.gatherVerts.Set(int64(compVerts))
	r.metrics.gatherEdges.Set(int64(unionEdges))
	if r.logger != nil {
		r.logger.Debug("router merge",
			"scatter", scatter, "gather", gather, "merge", merge,
			"component_vertices", compVerts, "union_edges", unionEdges,
			"partials_found", partialsFound)
	}
}

// observeQuery feeds one finished merged query into the outcome counter
// and the router's tracer (per-algo latency histograms, slow-query log).
func (r *Router) observeQuery(req core.Request, res *core.Result, err error, total time.Duration) {
	r.metrics.queries.With(routerOutcome(err)).Inc()
	if r.tracer == nil {
		return
	}
	rec := telemetry.QueryRecord{
		Algo:    req.Algo.String(),
		Tenant:  req.Tenant,
		Outcome: routerOutcome(err),
		Total:   total,
	}
	if res != nil {
		st := &res.Stats
		rec.Epoch = st.Epoch
		rec.Seed, rec.Expand, rec.Peel = st.Seed, st.Expand, st.Peel
		rec.SeedEdges, rec.PeelRounds, rec.EdgesPeeled = st.SeedEdges, st.PeelRounds, st.EdgesPeeled
	}
	r.tracer.Observe(rec)
}

// routerOutcome classifies a merged-query error into the bounded outcome
// label set (the same taxonomy as the single-manager query plane).
func routerOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, serve.ErrOverloaded):
		return "shed"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, trussindex.ErrNoCommunity),
		errors.Is(err, truss.ErrNoCommunity),
		errors.Is(err, steiner.ErrDisconnected),
		errors.Is(err, directed.ErrNoCommunity),
		errors.Is(err, prob.ErrNoCommunity),
		errors.Is(err, baseline.ErrNoCommunity):
		return "no_community"
	case errors.Is(err, core.ErrEmptyQuery),
		errors.Is(err, core.ErrVertexOutOfRange),
		errors.Is(err, core.ErrBadParam):
		return "bad_request"
	default:
		return "error"
	}
}
