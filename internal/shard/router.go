package shard

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/truss"
	"repro/internal/trussindex"
	"repro/internal/wal"
)

// Config tunes the sharded tier. Shards is the only required field.
type Config struct {
	// Shards is the shard count N (>= 1). N == 1 degenerates to a single
	// manager: the router delegates queries directly, byte-identical to
	// unsharded serving.
	Shards int
	// Seed keys the hash partitioner. The same (Shards, Seed, Communities)
	// always yields the same assignment.
	Seed uint64
	// Communities, when set, switches to community-aware assignment (see
	// NewCommunityPartitioner); typically internal/gen ground truth.
	Communities [][]int
	// Serve is the per-shard manager template. Metrics and Tracer must be
	// nil — N managers cannot share one registry's family names; per-shard
	// observability is the router's ctc_shard_*{shard} families and the
	// merged-query records it feeds its own Tracer.
	Serve serve.Options
	// WALDir, when non-empty, makes every shard durable: shard i logs to
	// WALDir/shard-000i (created if missing) via serve.OpenDurable, so each
	// shard recovers independently after a crash.
	WALDir string
	// WAL tunes the per-shard logs (shared template; FS default OsFS).
	WAL wal.Options
	// Metrics, when set, registers the router families: per-shard labeled
	// gauges (ctc_shard_epoch{shard}, ...) read at scrape time, and the
	// merge-pipeline phase histogram ctc_router_phase_duration_seconds.
	Metrics *telemetry.Registry
	// Tracer, when set, receives one QueryRecord per merged router query.
	Tracer *telemetry.Tracer
	// Logger, when set, receives router events; each shard's manager gets
	// Logger.With("shard", i).
	Logger *slog.Logger
}

// Router fans one Search(ctx, Request) plane across N per-shard managers:
// updates split to the home shards of their endpoints, queries scatter to
// the shards owning the query vertices and gather an exact merged answer
// (see query.go for the merge semantics and its exactness argument).
type Router struct {
	part    *Partitioner
	mgrs    []*serve.Manager
	tracer  *telemetry.Tracer
	logger  *slog.Logger
	metrics routerMetrics
}

// New partitions g and starts one serve.Manager per shard (concurrently —
// each runs its own initial truss decomposition over its subgraph). On any
// startup error the already-started shards are closed before returning.
func New(g *graph.Graph, cfg Config) (*Router, error) {
	part, err := newPartitionerFor(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Serve.Metrics != nil || cfg.Serve.Tracer != nil {
		return nil, errors.New("shard: per-shard Serve.Metrics/Serve.Tracer must be nil (set Config.Metrics/Config.Tracer on the router)")
	}
	r := &Router{
		part:   part,
		mgrs:   make([]*serve.Manager, part.Shards()),
		tracer: cfg.Tracer,
		logger: cfg.Logger,
	}
	var wg sync.WaitGroup
	errs := make([]error, part.Shards())
	for s := 0; s < part.Shards(); s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r.mgrs[s], errs[s] = newShardManager(g, part, s, cfg)
		}(s)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, m := range r.mgrs {
			if m != nil {
				m.Close()
			}
		}
		return nil, err
	}
	r.registerMetrics(cfg.Metrics)
	if r.logger != nil {
		r.logger.Info("shard router started",
			"shards", part.Shards(), "seed", cfg.Seed,
			"community_aware", part.homes != nil, "wal", cfg.WALDir != "")
	}
	return r, nil
}

func newPartitionerFor(cfg Config) (*Partitioner, error) {
	if len(cfg.Communities) > 0 {
		return NewCommunityPartitioner(cfg.Shards, cfg.Seed, cfg.Communities)
	}
	return NewPartitioner(cfg.Shards, cfg.Seed)
}

// CommunitiesFor resolves the community-aware assignment input for a named
// generated network: its ground truth when it has one, nil (hash fallback)
// otherwise. Shared by ctcserve and ctcbench flag wiring.
func CommunitiesFor(network string) [][]int {
	nw, err := gen.NetworkByName(network)
	if err != nil {
		return nil
	}
	return nw.GroundTruth()
}

func newShardManager(g *graph.Graph, part *Partitioner, s int, cfg Config) (*serve.Manager, error) {
	sub := part.Subgraph(g, s)
	opts := cfg.Serve
	if cfg.Logger != nil {
		opts.Logger = cfg.Logger.With("shard", s)
	}
	if cfg.WALDir == "" {
		return serve.NewManager(sub, opts), nil
	}
	dir := filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%04d", s))
	if cfg.WAL.FS == nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	base := func() (*trussindex.Index, error) {
		return trussindex.BuildFromDecomposition(sub, truss.Decompose(sub)), nil
	}
	m, _, err := serve.OpenDurable(dir, base, cfg.WAL, opts)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s, err)
	}
	return m, nil
}

// Shards returns the shard count N.
func (r *Router) Shards() int { return len(r.mgrs) }

// Partitioner exposes the assignment (for tests and tooling).
func (r *Router) Partitioner() *Partitioner { return r.part }

// Manager returns shard s's manager (for tests and tooling).
func (r *Router) Manager(s int) *serve.Manager { return r.mgrs[s] }

// Apply routes one update to the home shard(s) of its endpoints — one
// manager when both endpoints share a home, both otherwise (the cut-edge
// replication invariant). It blocks for backpressure like Manager.Apply.
// On a cut edge, an error from the second shard after the first accepted
// is returned as-is; the shards then disagree until the degraded shard
// recovers, which Degraded()/Stats() surface.
func (r *Router) Apply(up serve.Update) error {
	a := r.part.Home(up.U)
	b := r.part.Home(up.V)
	if err := r.mgrs[a].Apply(up); err != nil {
		return err
	}
	if b != a {
		return r.mgrs[b].Apply(up)
	}
	return nil
}

// Offer is the non-blocking Apply: it routes to the home shard(s) and
// reports whether every one of them accepted. To avoid a half-replicated
// cut edge on a full queue, both queues are required to have room up
// front (best effort — Offer remains lock-free).
func (r *Router) Offer(up serve.Update) bool {
	a := r.part.Home(up.U)
	b := r.part.Home(up.V)
	if !r.mgrs[a].Offer(up) {
		return false
	}
	if b != a {
		return r.mgrs[b].Offer(up)
	}
	return true
}

// Flush blocks until every shard's writer has drained and applied all
// previously acknowledged updates, then forces a publish on each, so a
// subsequent Query observes every prior Apply on every shard. Errors are
// joined; healthy shards are still flushed when one is degraded.
func (r *Router) Flush() error {
	errs := make([]error, len(r.mgrs))
	for i, m := range r.mgrs {
		errs[i] = m.Flush()
	}
	return errors.Join(errs...)
}

// Close shuts every shard down (drain, final publish, WAL close). The last
// published snapshots stay queryable.
func (r *Router) Close() {
	var wg sync.WaitGroup
	for _, m := range r.mgrs {
		wg.Add(1)
		go func(m *serve.Manager) {
			defer wg.Done()
			m.Close()
		}(m)
	}
	wg.Wait()
}

// Degraded reports whether ANY shard is in read-only degraded mode: one
// degraded shard means updates touching its vertices are being lost, so
// the tier as a whole must advertise it (healthz turns "degraded").
func (r *Router) Degraded() bool {
	for _, m := range r.mgrs {
		if m.Degraded() {
			return true
		}
	}
	return false
}

// Overloaded reports whether any shard's admission gate is saturated.
func (r *Router) Overloaded() bool {
	for _, m := range r.mgrs {
		if m.Overloaded() {
			return true
		}
	}
	return false
}

// ShardStat is the per-shard block of /stats: enough to spot a lagging,
// degraded, or overloaded shard at a glance.
type ShardStat struct {
	Shard           int   `json:"shard"`
	Epoch           int64 `json:"epoch"`
	Vertices        int   `json:"n"`
	Edges           int   `json:"m"`
	QueueLen        int   `json:"queue_len"`
	QueryQueueDepth int   `json:"query_queue_depth"`
	Dirty           int64 `json:"dirty"`
	Degraded        bool  `json:"degraded"`
	Overloaded      bool  `json:"overloaded"`
	WALEnabled      bool  `json:"wal_enabled"`
}

// ShardStats returns the per-shard stats blocks, in shard order.
func (r *Router) ShardStats() []ShardStat {
	out := make([]ShardStat, len(r.mgrs))
	for i, m := range r.mgrs {
		st := m.Stats()
		out[i] = ShardStat{
			Shard:           i,
			Epoch:           st.Epoch,
			Vertices:        st.Vertices,
			Edges:           st.Edges,
			QueueLen:        st.QueueLen,
			QueryQueueDepth: st.QueryQueueDepth,
			Dirty:           st.Dirty,
			Degraded:        st.Degraded,
			Overloaded:      st.Overloaded,
			WALEnabled:      st.WALEnabled,
		}
	}
	return out
}

// Stats aggregates the tier into one serve.Stats: epochs/sizes as maxima,
// counters as sums, booleans as any-of. Edges counts each shard's local
// edges, so replicated cut edges appear once per holding shard — the
// per-shard truth is in ShardStats.
func (r *Router) Stats() serve.Stats {
	var agg serve.Stats
	for i, m := range r.mgrs {
		st := m.Stats()
		if i == 0 || st.Epoch > agg.Epoch {
			agg.Epoch = st.Epoch
		}
		if st.SnapshotAge > agg.SnapshotAge {
			agg.SnapshotAge = st.SnapshotAge
		}
		if st.Vertices > agg.Vertices {
			agg.Vertices = st.Vertices
		}
		if st.MaxTruss > agg.MaxTruss {
			agg.MaxTruss = st.MaxTruss
		}
		agg.FullRebuild = agg.FullRebuild || st.FullRebuild
		agg.Edges += st.Edges
		agg.Dirty += st.Dirty
		agg.QueueLen += st.QueueLen
		agg.Publishes += st.Publishes
		agg.FullRebuilds += st.FullRebuilds
		agg.LiveSnapshots += st.LiveSnapshots
		agg.Retired += st.Retired
		agg.Adds += st.Adds
		agg.Removes += st.Removes
		agg.Rejected += st.Rejected
		agg.QueriesAdmitted += st.QueriesAdmitted
		agg.QueriesExecuted += st.QueriesExecuted
		agg.ShedDeadline += st.ShedDeadline
		agg.ShedQueueFull += st.ShedQueueFull
		agg.CanceledInQueue += st.CanceledInQueue
		agg.QueryQueueDepth += st.QueryQueueDepth
		agg.QueryInflight += st.QueryInflight
		agg.Overloaded = agg.Overloaded || st.Overloaded
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.CacheEntries += st.CacheEntries
		agg.WALEnabled = agg.WALEnabled || st.WALEnabled
		agg.Degraded = agg.Degraded || st.Degraded
		if st.WALLastError != "" && agg.WALLastError == "" {
			agg.WALLastError = st.WALLastError
		}
		agg.WALSegments += st.WALSegments
		agg.WALBytes += st.WALBytes
		agg.WALAppends += st.WALAppends
		agg.WALSyncs += st.WALSyncs
		agg.WALDropped += st.WALDropped
		if st.WALLastSeq > agg.WALLastSeq {
			agg.WALLastSeq = st.WALLastSeq
		}
		if st.WALDurableSeq > agg.WALDurableSeq {
			agg.WALDurableSeq = st.WALDurableSeq
		}
		if st.WALCheckpointSeq > agg.WALCheckpointSeq {
			agg.WALCheckpointSeq = st.WALCheckpointSeq
		}
	}
	if total := agg.CacheHits + agg.CacheMisses; total > 0 {
		agg.CacheHitRatio = float64(agg.CacheHits) / float64(total)
	}
	return agg
}
