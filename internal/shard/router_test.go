package shard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func newTestRouter(t *testing.T, shards int) (*Router, int) {
	t.Helper()
	g, _ := testGraph()
	r, err := New(g, Config{
		Shards: shards,
		Seed:   5,
		Serve: serve.Options{
			PublishDirty:    4,
			PublishInterval: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, g.N()
}

// Satellite bugfix: a Request.Q vertex that exists in no shard must fail
// with the typed core.ErrVertexOutOfRange — not a panic, not a silent
// empty result — and the rest of the validation taxonomy must pass through
// the router unchanged.
func TestRouterValidationTable(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		r, n := newTestRouter(t, shards)
		ctx := context.Background()
		cases := []struct {
			name string
			req  core.Request
			want error
		}{
			{"vertex == N", core.Request{Q: []int{n}}, core.ErrVertexOutOfRange},
			{"vertex far out of range", core.Request{Q: []int{n + 1000}}, core.ErrVertexOutOfRange},
			{"negative vertex", core.Request{Q: []int{-1}}, core.ErrVertexOutOfRange},
			{"one good one bad", core.Request{Q: []int{0, n + 3}}, core.ErrVertexOutOfRange},
			{"empty query", core.Request{}, core.ErrEmptyQuery},
			{"negative k", core.Request{Q: []int{0}, Algo: core.AlgoBasic, K: -2}, core.ErrBadParam},
			{"negative eta", core.Request{Q: []int{0}, Eta: -1}, core.ErrBadParam},
		}
		for _, tc := range cases {
			res, err := r.Query(ctx, tc.req)
			if !errors.Is(err, tc.want) {
				t.Errorf("shards=%d %s: err = %v, want %v", shards, tc.name, err, tc.want)
			}
			if res != nil {
				t.Errorf("shards=%d %s: non-nil result alongside validation error", shards, tc.name)
			}
		}
		// The bound is the tier-wide max: after an update grows one shard's
		// vertex space, a previously out-of-range vertex becomes queryable.
		grow := n + 2
		if err := r.Apply(serve.Update{Op: serve.OpAdd, U: 0, V: grow}); err != nil {
			t.Fatalf("shards=%d: apply: %v", shards, err)
		}
		if err := r.Flush(); err != nil {
			t.Fatalf("shards=%d: flush: %v", shards, err)
		}
		if _, err := r.Query(ctx, core.Request{Q: []int{grow}}); errors.Is(err, core.ErrVertexOutOfRange) {
			t.Errorf("shards=%d: vertex %d still out of range after growth", shards, grow)
		}
	}
}

// N == 1 delegates to the single manager: same answer as querying the
// manager directly, plus the one-entry epoch vector.
func TestRouterSingleShardDelegates(t *testing.T) {
	r, _ := newTestRouter(t, 1)
	ctx := context.Background()
	req := core.Request{Q: []int{0}}
	direct, derr := r.Manager(0).Query(ctx, req)
	routed, rerr := r.Query(ctx, req)
	if (derr == nil) != (rerr == nil) {
		t.Fatalf("err mismatch: direct %v, routed %v", derr, rerr)
	}
	if derr != nil {
		if !errors.Is(rerr, derr) && !errors.Is(derr, rerr) {
			t.Fatalf("err mismatch: direct %v, routed %v", derr, rerr)
		}
		return
	}
	if !sameCommunity(direct, routed) {
		t.Fatal("routed answer differs from direct manager answer")
	}
	if len(routed.Stats.ShardEpochs) != 1 || routed.Stats.ShardEpochs[0] != routed.Stats.Epoch {
		t.Fatalf("ShardEpochs = %v, want [%d]", routed.Stats.ShardEpochs, routed.Stats.Epoch)
	}
}

func TestRouterEpochVector(t *testing.T) {
	r, _ := newTestRouter(t, 4)
	res, err := r.Query(context.Background(), core.Request{Q: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.ShardEpochs) != 4 {
		t.Fatalf("ShardEpochs has %d entries, want 4", len(res.Stats.ShardEpochs))
	}
	var max int64
	for i, e := range res.Stats.ShardEpochs {
		if e <= 0 {
			t.Fatalf("shard %d epoch %d, want > 0", i, e)
		}
		if e > max {
			max = e
		}
	}
	if res.Stats.Epoch != max {
		t.Fatalf("Stats.Epoch = %d, want max(ShardEpochs) = %d", res.Stats.Epoch, max)
	}
}

func TestRouterStatsAggregation(t *testing.T) {
	r, n := newTestRouter(t, 4)
	ss := r.ShardStats()
	if len(ss) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(ss))
	}
	sumEdges := 0
	for i, s := range ss {
		if s.Shard != i {
			t.Fatalf("ShardStats[%d].Shard = %d", i, s.Shard)
		}
		if s.Epoch <= 0 || s.Vertices != n || s.Edges <= 0 {
			t.Fatalf("ShardStats[%d] implausible: %+v", i, s)
		}
		if s.Degraded || s.WALEnabled {
			t.Fatalf("ShardStats[%d] degraded/WAL without a WAL: %+v", i, s)
		}
		sumEdges += s.Edges
	}
	agg := r.Stats()
	if agg.Vertices != n || agg.Edges != sumEdges {
		t.Fatalf("aggregate n=%d m=%d, want n=%d m=%d", agg.Vertices, agg.Edges, n, sumEdges)
	}
	if agg.Degraded || agg.Overloaded {
		t.Fatalf("aggregate degraded/overloaded on a healthy tier: %+v", agg)
	}
	if r.Degraded() || r.Overloaded() {
		t.Fatal("router Degraded/Overloaded on a healthy tier")
	}
}

// Per-shard telemetry: the ctc_shard_*{shard} families and the router
// phase histogram land in the registry and expose scrape-time values.
func TestRouterMetricsExposition(t *testing.T) {
	g, _ := testGraph()
	reg := telemetry.NewRegistry()
	r, err := New(g, Config{Shards: 2, Seed: 5, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Query(context.Background(), core.Request{Q: []int{0, 1}}); err != nil {
		t.Logf("query: %v (metrics still recorded)", err)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ctc_shards 2`,
		`ctc_shard_epoch{shard="0"}`,
		`ctc_shard_epoch{shard="1"}`,
		`ctc_shard_graph_edges{shard="0"}`,
		`ctc_shard_degraded{shard="1"} 0`,
		`ctc_router_phase_duration_seconds_count{phase="merge"} 1`,
		`ctc_router_queries_total{outcome="ok"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
	fams, err := telemetry.ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-exposition does not parse: %v", err)
	}
	if fams["ctc_shard_epoch"] == nil || len(fams["ctc_shard_epoch"].Samples) != 2 {
		t.Fatal("ctc_shard_epoch should have one sample per shard")
	}
}

// sameCommunity compares the answer surface the differential criterion
// cares about: algorithm, trussness, size, and the exact vertex set.
func sameCommunity(a, b *core.Result) bool {
	if a.Stats.Algo != b.Stats.Algo || a.K != b.K || a.N() != b.N() || a.M() != b.M() {
		return false
	}
	av, bv := a.Vertices(), b.Vertices()
	if len(av) != len(bv) {
		return false
	}
	seen := make(map[int]bool, len(av))
	for _, v := range av {
		seen[v] = true
	}
	for _, v := range bv {
		if !seen[v] {
			return false
		}
	}
	return true
}
