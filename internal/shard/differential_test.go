package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

// Differential harness (acceptance criterion): the scatter-gather router
// must produce the same answers as one single-shard serve.Manager fed the
// identical update stream — same algorithm labels, same trussness, same
// community vertex sets — for every algorithm, across N ∈ {1,2,4}, at
// quiesced checkpoints of a seeded 1k-op mixed stream, while background
// queries keep publishes and snapshot handoffs in flight on both sides
// (run under -race in CI).

// diffAlgos is the full request matrix: all eight algorithms.
func diffAlgos() []core.Request {
	return []core.Request{
		{Algo: core.AlgoLCTC},
		{Algo: core.AlgoLCTC, DistanceMode: core.DistHop},
		{Algo: core.AlgoBasic},
		{Algo: core.AlgoBulkDelete},
		{Algo: core.AlgoTrussOnly},
		{Algo: core.AlgoDTruss},
		{Algo: core.AlgoProbTruss, MinProb: 0.3},
		{Algo: core.AlgoMDC},
		{Algo: core.AlgoQDC},
	}
}

type diffOp struct {
	op   serve.Op
	u, v int
}

// diffStream derives a deterministic 1k-op mixed stream from the base
// graph: removes drawn from the original edge set, adds drawn from random
// pairs (re-adds of removed edges included by construction), and a few
// foreign vertices beyond the base vertex space to force rebases.
func diffStream(g *graph.Graph, seed uint64, nOps int) []diffOp {
	rng := gen.NewRNG(seed)
	ops := make([]diffOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // remove an original edge (may already be gone)
			u, v := g.EdgeEndpoints(int32(rng.Intn(g.M())))
			ops = append(ops, diffOp{serve.OpRemove, u, v})
		case 4: // foreign add: grows the vertex space on both sides
			ops = append(ops, diffOp{serve.OpAdd, rng.Intn(g.N()), g.N() + rng.Intn(16)})
		default: // random add (sometimes a re-add, sometimes brand new)
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u == v {
				v = (v + 1) % g.N()
			}
			ops = append(ops, diffOp{serve.OpAdd, u, v})
		}
	}
	return ops
}

func diffServeOpts() serve.Options {
	return serve.Options{
		PublishDirty:    8,
		PublishInterval: 5 * time.Millisecond,
	}
}

func runDifferential(t *testing.T, shards int, communityAware bool, seed uint64) {
	g, comms := testGraph()
	oracle := serve.NewManager(g, diffServeOpts())
	defer oracle.Close()
	cfg := Config{Shards: shards, Seed: seed, Serve: diffServeOpts()}
	if communityAware {
		cfg.Communities = comms
	}
	router, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	nOps := 1000
	checkEvery := 250
	queries := 3
	if testing.Short() {
		nOps, checkEvery, queries = 300, 150, 2
	}
	ops := diffStream(g, seed, nOps)
	rng := gen.NewRNG(seed ^ 0xD1FF)
	ctx := context.Background()

	for start := 0; start < len(ops); start += checkEvery {
		end := start + checkEvery
		if end > len(ops) {
			end = len(ops)
		}
		// Publishes in flight: queries race the appliers on both planes
		// while this chunk streams in.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				qrng := gen.NewRNG(seed + uint64(start) + uint64(w))
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := gen.RandomQuery(g, qrng, 2)
					_, _ = router.Query(ctx, core.Request{Q: q})
					_, _ = oracle.Query(ctx, core.Request{Q: q})
				}
			}(w)
		}
		for _, op := range ops[start:end] {
			up := serve.Update{Op: op.op, U: op.u, V: op.v}
			if err := oracle.Apply(up); err != nil {
				t.Fatalf("oracle apply: %v", err)
			}
			if err := router.Apply(up); err != nil {
				t.Fatalf("router apply: %v", err)
			}
		}
		close(stop)
		wg.Wait()
		if err := oracle.Flush(); err != nil {
			t.Fatalf("oracle flush: %v", err)
		}
		if err := router.Flush(); err != nil {
			t.Fatalf("router flush: %v", err)
		}
		compareAt(t, ctx, oracle, router, shards, rng, queries, end)
		if t.Failed() {
			return
		}
	}
}

func compareAt(t *testing.T, ctx context.Context, oracle *serve.Manager, router *Router, shards int, rng *gen.RNG, queries, opCount int) {
	t.Helper()
	osnap := oracle.Acquire()
	n := osnap.Graph().N()
	osnap.Release()
	for qi := 0; qi < queries; qi++ {
		q := []int{rng.Intn(n)}
		if qi%2 == 1 {
			q = append(q, rng.Intn(n))
		}
		for _, base := range diffAlgos() {
			req := base
			req.Q = q
			want, werr := oracle.Query(ctx, req)
			got, gerr := router.Query(ctx, req)
			label := fmt.Sprintf("op %d, q=%v, algo %s", opCount, q, req.Algo)
			if routerOutcome(werr) != routerOutcome(gerr) {
				t.Errorf("%s: oracle err %v, router err %v", label, werr, gerr)
				continue
			}
			if werr != nil {
				continue
			}
			if !sameCommunity(want, got) {
				t.Errorf("%s: oracle %s vs router %s\noracle vertices: %v\nrouter vertices: %v",
					label, want.String(), got.String(),
					want.Vertices(), got.Vertices())
				continue
			}
			if want.QueryDist() != got.QueryDist() {
				t.Errorf("%s: query dist %d vs %d", label, want.QueryDist(), got.QueryDist())
			}
			if want.Algorithm != got.Algorithm {
				t.Errorf("%s: algorithm label %q vs %q", label, want.Algorithm, got.Algorithm)
			}
			if len(got.Stats.ShardEpochs) != shards {
				t.Errorf("%s: ShardEpochs has %d entries, want %d", label, len(got.Stats.ShardEpochs), shards)
			}
		}
	}
}

func TestDifferentialRouterVsSingleShard(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("hash_%d", shards), func(t *testing.T) {
			runDifferential(t, shards, false, 11)
		})
	}
	t.Run("community_4", func(t *testing.T) {
		runDifferential(t, 4, true, 23)
	})
}
