// Free-rider demonstration: shows, step by step, why maximizing trussness
// alone admits irrelevant "free rider" vertices, and how minimizing the
// diameter (the CTC model's second condition) eliminates them — the paper's
// Section 3.2 discussion on a generated graph.
//
//	go run ./examples/freerider
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
)

func main() {
	// A network with two planted dense regions far apart, connected by a
	// chain of moderately dense groups: a query inside one region will drag
	// the other region in as free riders if only trussness is maximized.
	g, comms := gen.CommunityGraph(gen.CommunityParams{
		N: 600, NumCommunities: 30, MinSize: 10, MaxSize: 25,
		Overlap: 0.25, PIntra: 0.5, BackgroundEdges: 400,
		PlantedClique: 10, Seed: 2024,
	})
	client := repro.Open(g)

	// Query three members of one ground-truth community.
	rng := gen.NewRNG(7)
	gq := gen.QueriesFromGroundTruth(rng, comms, 1, 3, 3)[0]
	q := gq.Q
	fmt.Printf("graph: %d vertices, %d edges; query %v from a ground-truth community of %d members\n\n",
		g.N(), g.M(), q, len(gq.Community))

	// The three variants run as one batch: SearchBatch amortizes a single
	// pooled query workspace across the requests.
	items, err := client.SearchBatch(context.Background(), []repro.Request{
		{Q: q, Algo: repro.AlgoTrussOnly},
		{Q: q, Algo: repro.AlgoBasic},
		{Q: q, Algo: repro.AlgoLCTC},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		if it.Err != nil {
			log.Fatal(it.Err)
		}
	}
	g0, basic, lctc := items[0].Result, items[1].Result, items[2].Result
	fmt.Printf("%-28s %6s %6s %9s %6s %6s\n", "", "|V|", "|E|", "density", "qdist", "F1")
	row := func(name string, n, m int, d float64, qd int, verts []int) {
		fmt.Printf("%-28s %6d %6d %9.3f %6d %6.3f\n",
			name, n, m, d, qd, repro.F1(verts, gq.Community))
	}
	row("G0 (trussness only)", g0.N(), g0.M(), g0.Density(), g0.QueryDist(), g0.Vertices())
	row("Basic (min diameter, 2-apx)", basic.N(), basic.M(), basic.Density(), basic.QueryDist(), basic.Vertices())
	row("LCTC (local heuristic)", lctc.N(), lctc.M(), lctc.Density(), lctc.QueryDist(), lctc.Vertices())

	freeRiders := g0.N() - basic.N()
	fmt.Printf("\nminimizing the diameter removed %d free riders (%.1f%% of G0)\n",
		freeRiders, 100*float64(freeRiders)/float64(g0.N()))
	fmt.Println("and raised the F1 alignment with the planted community.")
}
