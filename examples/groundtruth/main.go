// Ground-truth evaluation: generate a planted-community network, sample
// queries from known communities, and compare the F1 accuracy of LCTC
// against the Truss, MDC and QDC baselines (the paper's Exp-3 in miniature).
//
//	go run ./examples/groundtruth
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
)

func main() {
	g, comms, err := repro.GenerateNetwork("amazon")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("amazon analogue: %d vertices, %d edges, %d ground-truth communities\n\n",
		g.N(), g.M(), len(comms))
	client := repro.Open(g)
	rng := gen.NewRNG(42)
	queries := gen.QueriesFromGroundTruth(rng, comms, 30, 2, 4)

	type method struct {
		name string
		run  func(q []int) ([]int, error)
	}
	methods := []method{
		{"Truss", func(q []int) ([]int, error) {
			c, err := client.TrussOnly(q, nil)
			if err != nil {
				return nil, err
			}
			return c.Vertices(), nil
		}},
		{"LCTC", func(q []int) ([]int, error) {
			c, err := client.LCTC(q, nil)
			if err != nil {
				return nil, err
			}
			return c.Vertices(), nil
		}},
		{"MDC", func(q []int) ([]int, error) {
			// The Cocktail Party model's fixed distance and size constraints.
			r, err := client.MDC(q, &repro.MDCOptions{DistBound: 2, SizeBound: 10})
			if err != nil {
				return nil, err
			}
			return r.Vertices, nil
		}},
		{"QDC", func(q []int) ([]int, error) {
			r, err := client.QDC(q, nil)
			if err != nil {
				return nil, err
			}
			return r.Vertices, nil
		}},
	}
	fmt.Printf("%-6s %8s %8s\n", "method", "avg F1", "answers")
	for _, m := range methods {
		total, count := 0.0, 0
		for _, gq := range queries {
			detected, err := m.run(gq.Q)
			if err != nil {
				continue
			}
			total += repro.F1(detected, gq.Community)
			count++
		}
		avg := 0.0
		if count > 0 {
			avg = total / float64(count)
		}
		fmt.Printf("%-6s %8.3f %8d\n", m.name, avg, count)
	}
	fmt.Println("\nTruss is diluted by free riders; LCTC recovers most of the planted")
	fmt.Println("community. On these cleanly-planted communities the density- and")
	fmt.Println("degree-based baselines are competitive; the paper's advantage for")
	fmt.Println("LCTC grows on real, noisier ground truth (see EXPERIMENTS.md).")
}
