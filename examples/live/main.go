// Example live streams edge updates into the serving subsystem and watches
// the closest truss community of a fixed query set evolve across published
// epochs: the initial snapshot, a weakening phase that deletes edges inside
// the queried community (its trussness drops), and a strengthening phase
// that plants a fresh clique around the query vertices (its trussness
// rises above the original). Run with:
//
//	go run ./examples/live
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
)

func main() {
	// A small planted-community network; the query vertices are two members
	// of the same ground-truth community.
	g, truth := gen.CommunityGraph(gen.CommunityParams{
		N: 600, NumCommunities: 20, MinSize: 12, MaxSize: 30,
		Overlap: 0.25, PIntra: 0.55, BackgroundEdges: 500, Seed: 0x11FE,
	})
	comm := truth[0]
	q := []int{comm[0], comm[1]}

	mgr := serve.NewManager(g, serve.Options{
		PublishDirty:    16,
		PublishInterval: 50 * time.Millisecond,
	})
	defer mgr.Close()
	fmt.Printf("serving n=%d m=%d; query Q=%v (community of %d members)\n\n",
		g.N(), g.M(), q, len(comm))

	// Manager.Query (acquire latest snapshot → Search → release, epoch
	// stamped into the result's stats) is the usual serve-layer entry
	// point; the report helper pins the snapshot explicitly so the failure
	// branch can also name the exact epoch the query ran against.
	ctx := context.Background()
	report := func(phase string) {
		snap := mgr.Acquire()
		defer snap.Release()
		res, err := snap.Query(ctx, core.Request{Q: q})
		if err != nil {
			fmt.Printf("epoch %2d  %-28s no community: %v\n", snap.Epoch(), phase, err)
			return
		}
		fmt.Printf("epoch %2d  %-28s k=%-2d |H|=%-3d edges=%-4d dist(Q)=%d\n",
			res.Stats.Epoch, phase, res.K, res.N(), res.M(), res.QueryDist())
	}
	apply := func(up serve.Update) {
		if err := mgr.Apply(up); err != nil {
			log.Fatal(err)
		}
	}
	flush := func() {
		if err := mgr.Flush(); err != nil {
			log.Fatal(err)
		}
	}

	report("initial snapshot")

	// Phase 1: weaken — delete intra-community edges not touching Q, a few
	// at a time, re-querying between flushes.
	deleted := 0
	for i := 2; i < len(comm) && deleted < 40; i++ {
		for j := i + 1; j < len(comm) && deleted < 40; j++ {
			if g.HasEdge(comm[i], comm[j]) {
				apply(serve.Update{Op: serve.OpRemove, U: comm[i], V: comm[j]})
				deleted++
				if deleted%10 == 0 {
					flush()
					report(fmt.Sprintf("weakened (-%d edges)", deleted))
				}
			}
		}
	}

	// Phase 2: strengthen — plant an 8-clique over Q and six brand-new
	// vertices (growing the graph), a corner of the network that did not
	// exist at epoch 1.
	clique := []int{q[0], q[1]}
	for i := 0; i < 6; i++ {
		clique = append(clique, g.N()+i)
	}
	added := 0
	for i := 0; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			apply(serve.Update{Op: serve.OpAdd, U: clique[i], V: clique[j]})
			added++
		}
	}
	flush()
	report(fmt.Sprintf("planted 8-clique (+%d edges)", added))

	// Phase 3: tear the clique down again.
	for i := 2; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			apply(serve.Update{Op: serve.OpRemove, U: clique[i], V: clique[j]})
		}
	}
	flush()
	report("clique torn down")

	st := mgr.Stats()
	fmt.Printf("\nfinal: epoch %d, %d adds + %d removes applied, %d snapshots published, %d retired\n",
		st.Epoch, st.Adds, st.Removes, st.Publishes, st.Retired)
}
