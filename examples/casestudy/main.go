// Case study (the paper's Figure 11): on a DBLP-like collaboration
// network, compare the raw maximal k-truss G0 for four database researchers
// against the closest truss community LCTC extracts from it.
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	res, err := exp.CaseStudy(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query authors: %s\n\n", strings.Join(res.QueryNames, ", "))
	res.Table().Render(os.Stdout)
	fmt.Println("closest truss community members:")
	for _, name := range res.MemberNames {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println()
	fmt.Printf("G0 drags in %d loosely-attached authors spanning diameter %d;\n",
		res.G0.N()-res.LCTC.N(), res.G0Diameter)
	fmt.Printf("the closest community keeps the %d tightly-collaborating authors at diameter %d.\n",
		res.LCTC.N(), res.LCTCDiameter)
}
