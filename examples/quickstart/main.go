// Quickstart: build a small graph, index it, and run all four community
// searches on a multi-vertex query.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// The paper's Figure 1(a) example graph: two 4-cliques bridged through
	// a dense middle, a free-rider clique at q3, and a weak 2-truss path
	// through t. Vertices: q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7
	// p1=8 p2=9 p3=10 t=11.
	g := repro.FromEdges(12, [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4}, // clique q1,q2,v1,v2
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7}, // clique q3,v3,v4,v5
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7}, // connectors
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10}, // free riders p1..p3
		{0, 11}, {11, 2}, // weak path through t
	})
	client := repro.Open(g)
	fmt.Printf("graph: %d vertices, %d edges, max trussness %d\n\n",
		g.N(), g.M(), client.MaxTrussness())

	q := []int{0, 1, 2} // {q1, q2, q3}
	fmt.Printf("query Q = %v\n\n", q)

	// One entry point for all four algorithms: Search(ctx, Request). The
	// returned Result carries the community plus per-query stats (phase
	// timings, peel rounds, workspace reuse).
	ctx := context.Background()
	searches := []struct {
		name string
		algo repro.Algo
	}{
		{"TrussOnly (G0, no free-rider removal)", repro.AlgoTrussOnly},
		{"Basic     (2-approximation)", repro.AlgoBasic},
		{"BulkDelete ((2+ε)-approximation)", repro.AlgoBulkDelete},
		{"LCTC      (local heuristic)", repro.AlgoLCTC},
	}
	for _, s := range searches {
		res, err := client.Search(ctx, repro.Request{Q: q, Algo: s.algo, Verify: true})
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("%-40s k=%d  |V|=%-3d |E|=%-3d diam=%d  density=%.2f  members=%v\n",
			s.name, res.K, res.N(), res.M(), res.Diameter(), res.Density(), res.Vertices())
		fmt.Printf("%-40s     (%v total: seed %v, expand %v, peel %v over %d rounds)\n",
			"", res.Stats.Total, res.Stats.Seed, res.Stats.Expand, res.Stats.Peel, res.Stats.PeelRounds)
	}
	fmt.Println("\nNote how Basic and LCTC drop the free riders {8,9,10} that")
	fmt.Println("TrussOnly keeps, shrinking the diameter from 4 to the optimal 3.")
}
