// Uncertain and directed graphs: the paper's §8 future-work directions,
// implemented as extensions. A protein-interaction-style uncertain graph
// shows confidence-aware community search ((k,γ)-trusses); a follow-graph
// shows directed D-truss community search.
//
//	go run ./examples/uncertain
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	probabilistic()
	directedSearch()
}

func probabilistic() {
	fmt.Println("--- probabilistic (k,γ)-truss community ---")
	// Two 5-cliques sharing the query protein 0: interactions in the first
	// are high-confidence (0.95), in the second speculative (0.4).
	b := repro.NewBuilder(9, 0)
	reliable := []int{0, 1, 2, 3, 4}
	flaky := []int{0, 5, 6, 7, 8}
	probs := map[repro.EdgeKey]float64{}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(reliable[i], reliable[j])
			probs[repro.Key(reliable[i], reliable[j])] = 0.95
			b.AddEdge(flaky[i], flaky[j])
			if k := repro.Key(flaky[i], flaky[j]); probs[k] == 0 {
				probs[k] = 0.4
			}
		}
	}
	g := b.Build()
	pg, err := repro.NewProbGraph(g, probs)
	if err != nil {
		log.Fatal(err)
	}
	// Ignoring uncertainty, both cliques are 5-trusses sharing vertex 0, so
	// the deterministic community contains all nine proteins.
	det, err := repro.Open(g).TrussOnly([]int{0}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic k-truss: k=%d with %d members: %v\n",
		det.K, det.N(), det.Vertices())
	c, err := repro.ProbSearch(pg, []int{0}, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("γ=0.60 (k,γ)-truss:    k=%d with %d members: %v\n",
		c.K, len(c.Vertices), c.Vertices)
	fmt.Println("confidence-aware search drops the speculative clique {5..8}")
}

func directedSearch() {
	fmt.Println("\n--- directed D-truss community ---")
	// A mutual-follow clique {0..3} plus a one-way broadcast hub 4.
	b := repro.NewDiBuilder(5)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				b.AddArc(u, v)
			}
		}
	}
	for v := 0; v < 4; v++ {
		b.AddArc(4, v) // the hub follows no one back
	}
	g := b.Build()
	c, err := repro.DirectedSearch(g, []int{0, 1}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community for {0,1}: cycle-support kc=%d, members %v\n", c.Kc, c.Vertices)
	fmt.Println("the one-way hub 4 is excluded: broadcast edges form no mutual cycles")
}
