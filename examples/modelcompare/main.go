// Model comparison: demonstrates the paper's §1 motivation on its own
// Figure 1(a) graph — the prior triangle-connected k-truss community model
// (TCP, Huang et al. 2014) fails for the query {v4, q3, p1} at every k,
// while the closest-truss-community model answers it — and shows dynamic
// index maintenance keeping answers fresh under edge updates.
//
//	go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Figure 1(a): q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7 p1=8 p2=9 p3=10 t=11.
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	}
	g := repro.FromEdges(12, edges)
	client := repro.Open(g)
	names := []string{"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5", "p1", "p2", "p3", "t"}

	q := []int{6, 2, 8} // {v4, q3, p1}
	fmt.Printf("query Q = {v4, q3, p1}\n\n")

	// The prior TCP model: triangle connectivity is too strict.
	if _, err := client.TCP(q); err != nil {
		fmt.Printf("TCP (Huang et al. 2014): %v\n", err)
	} else {
		log.Fatal("unexpected: the paper proves this query has no TCP community")
	}

	// The CTC model answers it.
	c, err := client.LCTC(q, &repro.Options{Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CTC (this paper):        %d-truss, diameter %d, members:", c.K, c.Diameter())
	for _, v := range c.Vertices() {
		fmt.Printf(" %s", names[v])
	}
	fmt.Println()

	// Dynamic maintenance: strengthen the weak path through t and re-query.
	fmt.Println("\n--- dynamic updates ---")
	dy := repro.OpenDynamic(g)
	fmt.Printf("τ(t,q3) before updates: %d\n", dy.EdgeTruss(11, 2))
	// Adding (t,v4) and (t,v5) completes the 4-clique {t, q3, v4, v5}.
	dy.InsertEdge(11, 6)
	dy.InsertEdge(11, 7)
	fmt.Printf("τ(t,q3) after inserting (t,v4),(t,v5): %d (recomputed incrementally)\n",
		dy.EdgeTruss(11, 2))
	client2 := repro.FreezeDynamic(dy)
	c2, err := client2.LCTC([]int{11, 1}, nil) // {t, q2}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community for {t, q2} on the updated graph: %d-truss with %d members\n",
		c2.K, c2.N())
}
